"""Dynamic isochronicity checking (paper §II-A/§II-B definitions, §IV method).

Operation invariance (Definition: same instruction trace for all inputs,
the property Fig. 7's [br] rule plus the ctsel rewrites establish) and data
invariance (same address trace, the §III-C contract machinery's goal) are
checked against concrete executions, plus the memory-safety clause of
Covenant 1 (§II-C, Theorem 4).

The paper validates its Covenant 1 by running the repaired programs under
cachegrind/valgrind and comparing cache behaviour across inputs.  Here the
tracing interpreter observes the exact address sequences, so the checks are
*stronger*: instead of comparing aggregate hit/miss counts we compare the
full operation and data traces, and additionally offer the cache-level
check for fidelity with the paper's methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.cache.cache import CacheHierarchy
from repro.exec.backend import make_executor, resolve_backend, run_many
from repro.exec.memory import AccessViolation
from repro.ir.module import Module


@dataclass
class InvarianceReport:
    """Result of comparing executions of one function across inputs."""

    function: str
    runs: int = 0
    operation_invariant: bool = True
    data_invariant: bool = True
    data_consistent: bool = True
    memory_safe: bool = True
    violations: list[AccessViolation] = field(default_factory=list)
    #: cycle counts per run — equal cycles is the coarse "timing" signal
    cycles: list[int] = field(default_factory=list)

    @property
    def isochronous(self) -> bool:
        """Properties 1 and 2 of the paper both hold."""
        return self.operation_invariant and self.data_invariant

    def summary(self) -> str:
        flags = [
            f"operation_invariant={self.operation_invariant}",
            f"data_invariant={self.data_invariant}",
            f"data_consistent={self.data_consistent}",
            f"memory_safe={self.memory_safe}",
        ]
        return f"@{self.function} over {self.runs} runs: " + ", ".join(flags)


def check_invariance(
    module: Module,
    name: str,
    inputs: Sequence[Sequence[object]],
    strict_memory: bool = False,
    backend: Optional[str] = None,
) -> InvarianceReport:
    """Run ``@name`` on every input and compare the traces.

    ``strict_memory=False`` (the default) records out-of-bounds accesses
    instead of raising, so the report can say "not memory safe" rather than
    aborting — which is how the evaluation exhibits SC-Eliminator's unsafety.
    """
    report = InvarianceReport(name)
    interpreter = make_executor(
        module, backend=backend, strict_memory=strict_memory
    )
    first_ops = None
    first_data = None
    first_footprint = None
    # One batched submission: the whole input family is a single
    # structure-of-arrays dispatch on the batch backend (scalar backends
    # loop), with per-run results identical either way.
    for result in run_many(interpreter, name, inputs):
        report.runs += 1
        report.cycles.append(result.cycles)
        if result.violations:
            report.memory_safe = False
            report.violations.extend(result.violations)
        trace = result.trace
        assert trace is not None
        if first_ops is None:
            first_ops = trace.operation_signature()
            first_data = trace.data_signature()
            first_footprint = trace.data_footprint()
            continue
        if trace.operation_signature() != first_ops:
            report.operation_invariant = False
        if trace.data_signature() != first_data:
            report.data_invariant = False
        if trace.data_footprint() != first_footprint:
            report.data_consistent = False
    return report


@dataclass
class CacheInvarianceReport:
    """The paper's literal methodology: input-independent cache counters."""

    function: str
    signatures: list[tuple[int, ...]] = field(default_factory=list)

    @property
    def cache_invariant(self) -> bool:
        return len(set(self.signatures)) <= 1


def check_cache_invariance(
    module: Module,
    name: str,
    inputs: Sequence[Sequence[object]],
    strict_memory: bool = False,
    backend: Optional[str] = None,
) -> CacheInvarianceReport:
    """Run under the cache simulator and compare hit/miss signatures."""
    report = CacheInvarianceReport(name)
    # One executor and one CacheHierarchy for the whole family:
    # ``Cache.reset()`` restores the cold-cache state between runs, so the
    # per-run setup is a counter clear instead of a rebuild (the compiled
    # backend pays ``builtins.compile`` per executor).
    resolved = resolve_backend(backend)
    hierarchy = CacheHierarchy()
    interpreter = make_executor(
        module,
        backend=resolved,
        strict_memory=strict_memory,
        record_trace=False,
        cache=hierarchy,
    )
    for args in inputs:
        hierarchy.reset()
        interpreter.run(name, list(args))
        report.signatures.append(hierarchy.report().signature())
    return report


def compare_semantics(
    original: Module,
    transformed: Module,
    name: str,
    original_inputs: Sequence[Sequence[object]],
    transformed_inputs: Sequence[Sequence[object]],
    strict_original: bool = True,
    backend: Optional[str] = None,
) -> bool:
    """Check Theorem 1 dynamically: same outputs for corresponding inputs.

    The transformed function usually has extra parameters (contracts), so
    the two input sequences are given separately; they must correspond
    pairwise.
    """
    interpreter_a = make_executor(
        original, backend=backend, strict_memory=strict_original,
        record_trace=False,
    )
    interpreter_b = make_executor(
        transformed, backend=backend, strict_memory=False, record_trace=False,
    )
    pairs = list(zip(original_inputs, transformed_inputs))
    results_a = run_many(interpreter_a, name, [a for a, _ in pairs])
    results_b = run_many(interpreter_b, name, [b for _, b in pairs])
    for result_a, result_b in zip(results_a, results_b):
        if result_a.value != result_b.value:
            return False
        # Contract parameters are plain ints, so the array arguments of both
        # versions appear in the same relative order; compare them pairwise.
        arrays_a = [a for a in result_a.arrays if a is not None]
        arrays_b = [b for b in result_b.arrays if b is not None]
        if arrays_a != arrays_b:
            return False
        if result_a.global_state != result_b.global_state:
            return False
    return True
