"""Covenant 1 checking — the paper's end-to-end guarantee, as one call.

Covenant 1 (paper Section II-C): for the repair transformation ``T`` and a
program ``P``:

1. ``T`` is memory safe — ``T(P)`` has no out-of-bounds access that ``P``
   did not have, for any input respecting the contracts;
2. ``T(P)`` is operation invariant;
3. ``T(P)`` is data invariant *when P is data consistent* (and, by the
   Section III-C compromise, whenever no input indexes memory and all
   contracts were found).

``check_covenant`` repairs a function, runs original and repaired versions
on caller-supplied inputs, and reports each clause plus semantic
preservation (Theorem 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.data_consistency import classify_data_consistency
from repro.core.contracts import build_signature_map
from repro.core.repair import RepairOptions, repair_module
from repro.ir.module import Module
from repro.obs import OBS
from repro.verify.isochronicity import (
    check_cache_invariance,
    check_invariance,
    compare_semantics,
)


@dataclass
class CovenantReport:
    function: str
    semantics_preserved: bool
    operation_invariant: bool
    data_invariant: bool
    memory_safe: bool
    predicted_data_invariant: bool
    inherently_data_inconsistent: bool
    #: cache-channel clauses (the paper's cachegrind methodology): the
    #: repaired (and, when supplied, O1-optimised) function's hit/miss
    #: signature is input-independent.  ``None`` = not checked.  Kept out
    #: of :attr:`holds` — inherently data-inconsistent programs legitimately
    #: vary their cache behaviour (whitelisted like the data clause).
    cache_invariant: Optional[bool] = None
    cache_invariant_o1: Optional[bool] = None

    @property
    def holds(self) -> bool:
        """All unconditional clauses of Covenant 1, plus correctness."""
        clauses = (
            self.semantics_preserved
            and self.operation_invariant
            and self.memory_safe
        )
        if self.predicted_data_invariant:
            return clauses and self.data_invariant
        return clauses


def adapt_inputs(
    module: Module,
    name: str,
    inputs: Sequence[Sequence[object]],
    cond: int = 1,
) -> list[list[object]]:
    """Rewrite argument lists for a *repaired* function's interface.

    Array arguments get their actual length appended (satisfying the
    contract exactly); the trailing path-condition argument, when the
    repaired signature has one, receives ``cond``.
    """
    signatures = build_signature_map(module)
    contract = signatures[name]
    adapted: list[list[object]] = []
    for args in inputs:
        new_args: list[object] = []
        for param, arg in zip(contract.original_params, args):
            new_args.append(arg)
            if param.is_pointer:
                if not isinstance(arg, list):
                    raise TypeError(
                        f"argument for pointer parameter {param.name} must be "
                        "a list"
                    )
                new_args.append(len(arg))
        if contract.cond_param is not None:
            new_args.append(cond)
        adapted.append(new_args)
    return adapted


def check_covenant(
    module: Module,
    name: str,
    inputs: Sequence[Sequence[object]],
    options: Optional[RepairOptions] = None,
    repaired: Optional[Module] = None,
    backend: Optional[str] = None,
    repaired_o1: Optional[Module] = None,
) -> CovenantReport:
    """Repair ``@name`` (unless ``repaired`` is given) and verify Covenant 1.

    When ``repaired_o1`` is given, the O1-optimised variant's cache
    signatures are compared too (:attr:`CovenantReport.cache_invariant_o1`).
    """
    if repaired is None:
        repaired = repair_module(module, options)
    repaired_inputs = adapt_inputs(module, name, inputs)

    semantics = compare_semantics(
        module, repaired, name, inputs, repaired_inputs, backend=backend
    )
    invariance = check_invariance(
        repaired, name, repaired_inputs, backend=backend
    )
    consistency = classify_data_consistency(module, name)
    cache = check_cache_invariance(
        repaired, name, repaired_inputs, backend=backend
    )
    cache_o1: Optional[bool] = None
    if repaired_o1 is not None:
        cache_o1 = check_cache_invariance(
            repaired_o1, name, repaired_inputs, backend=backend
        ).cache_invariant

    report = CovenantReport(
        function=name,
        semantics_preserved=semantics,
        operation_invariant=invariance.operation_invariant,
        data_invariant=invariance.data_invariant,
        memory_safe=invariance.memory_safe,
        predicted_data_invariant=consistency.repaired_data_invariant,
        inherently_data_inconsistent=consistency.inherently_inconsistent,
        cache_invariant=cache.cache_invariant,
        cache_invariant_o1=cache_o1,
    )
    if OBS.enabled:
        OBS.counter("verify.covenant.checked")
        OBS.counter(
            "verify.covenant.ok" if report.holds else "verify.covenant.violated"
        )
        for clause in (
            "semantics_preserved",
            "operation_invariant",
            "data_invariant",
            "memory_safe",
            "cache_invariant",
        ):
            if getattr(report, clause):
                OBS.counter(f"verify.covenant.{clause}")
        OBS.event(
            "covenant",
            function=name,
            holds=report.holds,
            semantics_preserved=report.semantics_preserved,
            operation_invariant=report.operation_invariant,
            data_invariant=report.data_invariant,
            memory_safe=report.memory_safe,
            cache_invariant=report.cache_invariant,
            cache_invariant_o1=report.cache_invariant_o1,
        )
    return report
