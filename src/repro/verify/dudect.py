"""A dudect-style statistical timing-leak tester (paper §IV's CTBench side).

The paper benchmarks against routines distributed with dudect (Reparaz,
Balasch, Verbauwhede: "Dude, is my code constant time?", DATE 2017), the
standard black-box leak detector: run the target on two input classes —
fixed vs random — collect timings, and apply Welch's t-test; a large |t|
means the timing distribution depends on the input class, i.e. a leak.

Here the "timings" are the deterministic simulated cycle counts, so the
test is sharper than on hardware: any |t| above the threshold is a real
dependence, and truly isochronous code yields *identical* cycle counts
(t = 0).  A noise model is still included (``jitter``) so the statistical
machinery is exercised the way dudect uses it on real machines.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.exec.backend import make_executor, run_many
from repro.ir.module import Module

#: dudect's conventional decision threshold for |t|.
T_THRESHOLD = 4.5


@dataclass
class Welch:
    """Welch's t-statistic between two sample sets, computed incrementally."""

    n: list[int] = field(default_factory=lambda: [0, 0])
    mean: list[float] = field(default_factory=lambda: [0.0, 0.0])
    m2: list[float] = field(default_factory=lambda: [0.0, 0.0])

    def push(self, group: int, value: float) -> None:
        self.n[group] += 1
        delta = value - self.mean[group]
        self.mean[group] += delta / self.n[group]
        self.m2[group] += delta * (value - self.mean[group])

    def statistic(self) -> float:
        if min(self.n) < 2:
            return 0.0
        var = [
            self.m2[g] / (self.n[g] - 1) for g in (0, 1)
        ]
        denominator = math.sqrt(
            var[0] / self.n[0] + var[1] / self.n[1]
        )
        if denominator == 0.0:
            # Zero variance in both groups: deterministic timings.  Equal
            # means is perfect constant-time; different means is a leak with
            # infinite confidence.
            return 0.0 if self.mean[0] == self.mean[1] else math.inf
        return (self.mean[0] - self.mean[1]) / denominator


@dataclass
class DudectReport:
    function: str
    measurements: int
    t_statistic: float
    max_cycles: int
    min_cycles: int

    @property
    def leaking(self) -> bool:
        return abs(self.t_statistic) > T_THRESHOLD

    def summary(self) -> str:
        verdict = "LEAKING" if self.leaking else "constant time"
        return (
            f"@{self.function}: |t| = {abs(self.t_statistic):.2f} over "
            f"{self.measurements} measurements -> {verdict}"
        )


def dudect_test(
    module: Module,
    name: str,
    fixed_inputs: Sequence[object],
    random_inputs: Callable[[random.Random], Sequence[object]],
    measurements: int = 200,
    jitter: float = 0.0,
    seed: int = 0,
    strict_memory: bool = True,
    backend: Optional[str] = None,
) -> DudectReport:
    """Fixed-vs-random timing test on ``@name``.

    ``fixed_inputs`` is one argument list (the fixed class);
    ``random_inputs`` draws an argument list for the random class.  With
    ``jitter > 0`` Gaussian noise of that many cycles is added to each
    measurement, emulating a real machine.
    """
    rng = random.Random(seed)
    interpreter = make_executor(module, backend=backend, record_trace=False,
                                strict_memory=strict_memory)
    # Draw every argument vector (and its noise term) up front, in the
    # exact interleaved order the measurement loop used to consume the
    # RNG, then submit the whole family as one batch.  On the batch
    # backend the fixed class deduplicates to a single execution per
    # chunk; per-measurement cycle counts are identical either way.
    vectors = []
    noise = []
    for index in range(measurements):
        if index % 2 == 0:
            vectors.append([list(a) if isinstance(a, list) else a
                            for a in fixed_inputs])
        else:
            vectors.append(list(random_inputs(rng)))
        noise.append(rng.gauss(0.0, jitter) if jitter > 0 else 0.0)
    welch = Welch()
    low = high = None
    for index, result in enumerate(run_many(interpreter, name, vectors)):
        cycles = result.cycles
        low = cycles if low is None else min(low, cycles)
        high = cycles if high is None else max(high, cycles)
        welch.push(index % 2, cycles + noise[index])
    assert low is not None and high is not None
    return DudectReport(
        function=name,
        measurements=measurements,
        t_statistic=welch.statistic(),
        max_cycles=high,
        min_cycles=low,
    )


def make_array_randomizer(
    shapes: Sequence[object],
) -> Callable[[random.Random], list[object]]:
    """Build a random-class generator from an argument template.

    Each element of ``shapes`` is either an int (copied verbatim — a public
    argument) or a list whose length and element magnitude are mimicked.
    """
    def generate(rng: random.Random) -> list[object]:
        args: list[object] = []
        for shape in shapes:
            if isinstance(shape, list):
                bound = max([abs(v) for v in shape] + [255])
                args.append([rng.randint(0, bound) for _ in shape])
            else:
                args.append(shape)
        return args

    return generate
