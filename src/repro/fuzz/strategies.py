"""Hypothesis strategies for random well-formed IR programs.

Promoted from ``tests/property/generators.py`` (which now re-exports this
module) so the property tests and the fuzz subsystem share one generator
family.  The strategies gained size/feature knobs; calling them with no
arguments reproduces the original behaviour, keeping the existing property
tests untouched.

The generator builds acyclic, single-function modules:

* one pointer parameter (an array of ``array_cells`` cells) and two integer
  parameters;
* a DAG of basic blocks in topological order; conditional branches only
  target later blocks, the final block returns;
* instructions use only names defined earlier in the *same* block, the
  entry block, or the parameters — which guarantees SSA dominance without
  needing phis (phi-specific behaviour is covered by the unit tests).

Memory accesses use indices with ``index_slack`` cells of out-of-bounds
room on each side, so both in-bounds and out-of-bounds paths are
generated; the repair properties run them with the memory model in the
mode appropriate to the property being checked.  Hypothesis is imported
here and only here — ``lif fuzz`` itself runs on the seeded generators in
:mod:`repro.fuzz.generators` and never needs it.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.ir.builder import IRBuilder
from repro.ir.function import Function, Param
from repro.ir.module import Module
from repro.ir.values import Const, Var

ARRAY_CELLS = 4

_BINOPS = ("+", "-", "*", "&", "|", "^", "<<", ">>", "==", "!=", "<", "<=")
_UNOPS = ("-", "!", "~")


@st.composite
def ir_modules(
    draw,
    max_blocks: int = 5,
    max_instrs: int = 5,
    array_cells: int = ARRAY_CELLS,
    index_slack: int = 2,
) -> Module:
    """A random acyclic single-function module."""
    n_blocks = draw(st.integers(min_value=1, max_value=max_blocks))
    module = Module("random")
    function = Function(
        "f", [Param("arr", "ptr"), Param("x", "int"), Param("y", "int")]
    )
    module.add_function(function)
    builder = IRBuilder(function, name_prefix="v")

    labels = [f"b{i}" for i in range(n_blocks)]
    for label in labels:
        function.add_block(label)

    entry_values: list = [Var("x"), Var("y"), Const(draw(_small_ints()))]

    for position, label in enumerate(labels):
        builder.position_at(function.blocks[label])
        # Values usable here: params/entry defs + defs earlier in this block.
        available = list(entry_values)
        n_instrs = draw(st.integers(min_value=1, max_value=max_instrs))
        for _ in range(n_instrs):
            value = _emit_instruction(
                draw, builder, available, array_cells, index_slack
            )
            if value is not None:
                available.append(value)
                if position == 0:
                    entry_values.append(value)

        if position == n_blocks - 1:
            builder.ret(draw(st.sampled_from(available)))
        else:
            successors = list(range(position + 1, n_blocks))
            if draw(st.booleans()) and len(successors) >= 1:
                target_a = labels[draw(st.sampled_from(successors))]
                target_b = labels[draw(st.sampled_from(successors))]
                builder.br(draw(st.sampled_from(available)), target_a, target_b)
            else:
                builder.jmp(labels[draw(st.sampled_from(successors))])

    # Unreachable blocks (both br arms skipping a block) may lack content;
    # the preprocessing pipeline removes them — that's part of what we test.
    return module


def _small_ints():
    return st.integers(min_value=-8, max_value=8)


def _emit_instruction(draw, builder: IRBuilder, available, array_cells,
                      index_slack):
    kind = draw(st.sampled_from(("binop", "unop", "ctsel", "load", "store")))
    if kind == "binop":
        op = draw(st.sampled_from(_BINOPS))
        lhs = draw(st.sampled_from(available))
        rhs = draw(st.one_of(st.sampled_from(available),
                             _small_ints().map(Const)))
        return builder.binop(op, lhs, rhs)
    if kind == "unop":
        return builder.unop(draw(st.sampled_from(_UNOPS)),
                            draw(st.sampled_from(available)))
    if kind == "ctsel":
        return builder.ctsel(
            draw(st.sampled_from(available)),
            draw(st.sampled_from(available)),
            draw(st.sampled_from(available)),
        )
    index = Const(draw(st.integers(
        min_value=-index_slack, max_value=array_cells + index_slack - 1
    )))
    if kind == "load":
        return builder.load("arr", index)
    builder.store(draw(st.sampled_from(available)), "arr", index)
    return None


@st.composite
def argument_lists(draw, array_cells: int = ARRAY_CELLS) -> list:
    """Arguments matching the generated function's signature."""
    array = draw(
        st.lists(
            st.integers(min_value=-100, max_value=100),
            min_size=array_cells, max_size=array_cells,
        )
    )
    x = draw(st.integers(min_value=-100, max_value=100))
    y = draw(st.integers(min_value=-100, max_value=100))
    return [array, x, y]
