"""The fuzz campaign driver behind ``lif fuzz``.

One campaign is fully determined by ``(seed, iterations, config)``: sample
seeds are derived arithmetically, inputs are derived from sample seeds,
the minimizer is deterministic, and results are merged in sample order
regardless of which worker process finished first — so two runs of
``lif fuzz --seed 0 --iterations 200`` produce byte-identical summaries
and corpora, whatever ``--jobs`` says.  That reproducibility is what makes
the CI smoke job a meaningful gate instead of a dice roll.

Fan-out reuses the recipe of :mod:`repro.artifacts.parallel`: forked
workers reset the obs collector, do their slice of the seed space, and
ship a metrics snapshot back with their results for the parent to merge.
"""

from __future__ import annotations

import gc
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.fuzz.corpus import CorpusCase, make_case_id, store_case
from repro.fuzz.generators import (
    FuzzConfig,
    generate_inputs,
    generate_program,
    ir_module_inputs,
    random_ir_module,
    secret_family,
)
from repro.fuzz.minimize import minimize_spec
from repro.fuzz.oracles import ORACLES, SampleInvalid, compile_sample, run_oracles
from repro.fuzz.spec import render_program
from repro.obs import OBS

#: Decorrelates successive base seeds without losing reproducibility.
_SEED_STRIDE = 1_000_003


@dataclass
class FuzzFailure:
    """One disagreement, minimized and ready for the corpus."""

    seed: int
    kind: str  # "minic" | "ir"
    case_id: str
    entry: str
    source: str
    inputs: list
    failed: tuple
    report: dict
    secret_inputs: Optional[list] = None
    minimize_checks: int = 0

    def as_corpus_case(self, note: str = "") -> CorpusCase:
        return CorpusCase(
            case_id=self.case_id,
            kind=self.kind,
            seed=self.seed,
            entry=self.entry,
            source=self.source,
            inputs=self.inputs,
            secret_inputs=self.secret_inputs,
            failed=list(self.failed),
            note=note or "found by lif fuzz; minimized reproducer",
            report=self.report,
        )


@dataclass
class FuzzReport:
    """Deterministic summary of one campaign."""

    seed: int
    iterations: int
    minic_samples: int = 0
    ir_samples: int = 0
    invalid_samples: int = 0
    counters: dict = field(default_factory=dict)  # oracle -> {checked, failed}
    failures: list = field(default_factory=list)  # [FuzzFailure]
    corpus_paths: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary_lines(self) -> list:
        lines = [
            f"fuzz seed={self.seed} iterations={self.iterations} "
            f"(minic={self.minic_samples}, ir={self.ir_samples}, "
            f"invalid={self.invalid_samples})"
        ]
        for name in ORACLES:
            entry = self.counters.get(name, {"checked": 0, "failed": 0})
            lines.append(
                f"oracle {name:14s} checked={entry['checked']} "
                f"failed={entry['failed']}"
            )
        lines.append(f"failures: {len(self.failures)}")
        for failure in self.failures:
            lines.append(
                f"  {failure.case_id} kind={failure.kind} "
                f"seed={failure.seed} oracles={','.join(failure.failed)}"
            )
        for path in self.corpus_paths:
            lines.append(f"  wrote {path}")
        return lines


# -- one sample --------------------------------------------------------------


def sample_kind(index: int, config: FuzzConfig) -> str:
    if config.ir_fraction and (index + 1) % config.ir_fraction == 0:
        return "ir"
    return "minic"


def run_one(
    case_seed: int,
    kind: str,
    config: FuzzConfig,
    minimize: bool = True,
    max_minimize_checks: int = 1500,
    repair_fn: Optional[Callable] = None,
    spec=None,
    module=None,
    coverage: bool = False,
) -> dict:
    """Generate and cross-check one sample; minimize on disagreement.

    ``spec`` (MiniC) / ``module`` (IR) inject a pre-materialized sample —
    the coverage-guided campaign passes mutated genotypes this way while
    the blind driver keeps deriving everything from ``case_seed``.  With
    ``coverage=True`` the oracle battery runs inside an
    ``OBS.capture(force=True)`` window and the result carries the sample's
    sorted coverage keys under ``"coverage"`` (see
    :mod:`repro.fuzz.coverage`).
    """
    if kind == "ir":
        if module is None:
            module = random_ir_module(case_seed)
        inputs = ir_module_inputs(case_seed)
        source = _ir_text(module)
        entry = "f"
        report, keys = _checked(
            module, entry, inputs, None, repair_fn, coverage
        )
        result = _result(case_seed, kind, entry, report)
        if keys is not None:
            result["coverage"] = keys
        result["source"] = source
        if not report.ok:
            result.update(inputs=inputs,
                          case_id=make_case_id(case_seed, source))
        return result

    if spec is None:
        spec = generate_program(case_seed, config)
    source = render_program(spec)
    try:
        module = compile_sample(source, name=f"fuzz_{case_seed}")
    except SampleInvalid as error:
        # A generator validity bug: surface it as its own category rather
        # than crashing the campaign (and fail loudly in the summary).
        return {
            "seed": case_seed, "kind": kind, "entry": spec.entry,
            "invalid": str(error), "checked": [], "failed": [],
            "source": source,
        }
    inputs = generate_inputs(spec, case_seed)
    report, keys = _checked(
        module, spec.entry, inputs, secret_family(inputs), repair_fn, coverage
    )
    result = _result(case_seed, kind, spec.entry, report)
    if keys is not None:
        result["coverage"] = keys
    result["source"] = source
    if report.ok:
        return result

    checks = 0
    if minimize:
        target = report.failed[0]
        predicate = _failure_predicate(target, case_seed, repair_fn)
        spec, checks = minimize_spec(
            spec, predicate, max_checks=max_minimize_checks
        )
        source = render_program(spec)
        module = compile_sample(source, name=f"fuzz_{case_seed}_min")
        inputs = generate_inputs(spec, case_seed)
        report = run_oracles(
            module, spec.entry, inputs,
            secret_inputs=secret_family(inputs), repair_fn=repair_fn,
        )
        result = _result(case_seed, kind, spec.entry, report)
        if keys is not None:  # coverage reflects the sample as generated
            result["coverage"] = keys
        if report.ok:  # cannot happen for a sound predicate; keep the raw case
            result["failed"] = [target]
    result.update(
        source=source,
        inputs=inputs,
        secret_inputs=secret_family(inputs),
        case_id=make_case_id(case_seed, source),
        minimize_checks=checks,
        report_dict=report.as_dict(),
    )
    return result


def _checked(module, entry, inputs, secret_inputs, repair_fn, coverage):
    """Run the oracle battery, optionally harvesting coverage keys."""
    if not coverage:
        return run_oracles(
            module, entry, inputs,
            secret_inputs=secret_inputs, repair_fn=repair_fn,
        ), None
    from repro.fuzz.coverage import sample_keys

    with OBS.capture(force=True) as window:
        report = run_oracles(
            module, entry, inputs,
            secret_inputs=secret_inputs, repair_fn=repair_fn,
        )
    return report, sorted(sample_keys(module, entry, inputs, window.counters))


def _result(seed: int, kind: str, entry: str, report) -> dict:
    return {
        "seed": seed,
        "kind": kind,
        "entry": entry,
        "checked": [r.name for r in report.results],
        "failed": list(report.failed),
        "report_dict": report.as_dict(),
    }


def _ir_text(module) -> str:
    from repro.ir import module_to_str

    return module_to_str(module)


def _failure_predicate(target: str, case_seed: int, repair_fn):
    """Build the shrink predicate: does the candidate still fail ``target``?"""

    def predicate(candidate) -> bool:
        try:
            source = render_program(candidate)
            module = compile_sample(source, name="candidate")
            inputs = generate_inputs(candidate, case_seed)
            report = run_oracles(
                module, candidate.entry, inputs,
                secret_inputs=secret_family(inputs), repair_fn=repair_fn,
            )
        except SampleInvalid:
            return False
        except Exception:
            return False
        return target in report.failed

    return predicate


# -- the campaign ------------------------------------------------------------


def _worker(batch: list, config_record: dict, minimize: bool,
            max_checks: int) -> tuple:
    OBS.reset()
    config = FuzzConfig.from_dict(config_record)
    results = [
        run_one(case_seed, kind, config, minimize=minimize,
                max_minimize_checks=max_checks)
        for case_seed, kind in batch
    ]
    return results, OBS.snapshot()


def run_fuzz(
    seed: int = 0,
    iterations: int = 200,
    jobs: Optional[int] = None,
    minimize: bool = True,
    config: Optional[FuzzConfig] = None,
    corpus_dir=None,
    store: bool = False,
    repair_fn: Optional[Callable] = None,
    max_minimize_checks: int = 1500,
) -> FuzzReport:
    """Run a campaign; deterministic in everything but wall-clock.

    ``store=True`` writes each (minimized) failure into ``corpus_dir``
    (default ``tests/corpus/``).  ``repair_fn`` injects an alternative
    repair pipeline — test-only, forces serial execution because closures
    do not cross process boundaries.
    """
    from repro.artifacts.parallel import resolve_jobs

    config = config or FuzzConfig()
    tasks = [
        (seed * _SEED_STRIDE + index, sample_kind(index, config))
        for index in range(iterations)
    ]
    jobs = 1 if repair_fn is not None else resolve_jobs(jobs)

    results: list = []
    if jobs <= 1 or iterations <= 1:
        for case_seed, kind in tasks:
            results.append(run_one(
                case_seed, kind, config, minimize=minimize,
                max_minimize_checks=max_minimize_checks,
                repair_fn=repair_fn,
            ))
    else:
        gc.collect()  # fork-lean, as in artifacts.parallel
        jobs = min(jobs, iterations)
        batches: list = [tasks[i::jobs] for i in range(jobs)]
        ordered: dict = {}
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [
                pool.submit(_worker, batch, config.as_dict(), minimize,
                            max_minimize_checks)
                for batch in batches if batch
            ]
            for future in futures:
                worker_results, snapshot = future.result()
                OBS.merge(snapshot)
                for entry in worker_results:
                    ordered[entry["seed"]] = entry
        results = [ordered[case_seed] for case_seed, _ in tasks]

    report = FuzzReport(seed=seed, iterations=iterations)
    for name in ORACLES:
        report.counters[name] = {"checked": 0, "failed": 0}
    for entry in results:
        if entry["kind"] == "ir":
            report.ir_samples += 1
        else:
            report.minic_samples += 1
        if "invalid" in entry:
            report.invalid_samples += 1
            continue
        for name in entry["checked"]:
            report.counters[name]["checked"] += 1
        for name in entry["failed"]:
            report.counters[name]["failed"] += 1
        if entry["failed"]:
            report.failures.append(FuzzFailure(
                seed=entry["seed"],
                kind=entry["kind"],
                case_id=entry["case_id"],
                entry=entry["entry"],
                source=entry["source"],
                inputs=entry["inputs"],
                secret_inputs=entry.get("secret_inputs"),
                failed=tuple(entry["failed"]),
                report=entry.get("report_dict"),
                minimize_checks=entry.get("minimize_checks", 0),
            ))

    if OBS.enabled:
        OBS.counter("fuzz.samples", iterations)
        OBS.counter("fuzz.failures", len(report.failures))

    if store and report.failures:
        from repro.fuzz.corpus import DEFAULT_CORPUS_DIR

        directory = corpus_dir or DEFAULT_CORPUS_DIR
        for failure in report.failures:
            report.corpus_paths.extend(
                str(p) for p in store_case(failure.as_corpus_case(), directory)
            )
    return report
