"""The deterministic coverage map guiding mutation-based campaigns.

Coverage here is *pipeline* coverage, not line coverage of this repository:
a sample is scored by which behaviours it provokes out of the stack under
test.  Two signal families are folded into one key set per sample:

* **branch edges** — the block-transition edges of one traced execution of
  the sample over its deterministic input vectors
  (``edge:<fn>:<from>-><to>``, plus ``call:<fn>-><fn>`` for cross-function
  transfers).  Block labels are structure-derived (``if.then``,
  ``if.join``…), so edge keys encode the sample's control-flow shape.
* **counter deltas** — the obs counters fired while the six-oracle battery
  ran the sample, harvested with ``OBS.capture(force=True)`` so campaigns
  need no global tracing.  Only *deterministic* counter families are
  admitted (see :data:`COUNTER_FAMILIES`): repair-rule firings
  (``core.repair.*``), optimizer-pass firings (``opt.pass.*``), certifier
  rule ids (``statics.certifier.rule.*``) and oracle failures.  Wall-clock
  (``*.seconds``) and process-history counters (``exec.*``,
  ``artifacts.*``) are excluded — the same sample must map to the same
  keys in every process, or sharded campaigns would diverge.

Magnitude counters are bucketed to their bit length (``b0, b1, b2…``), so
"repair inserted ~2x more ctsels than anything seen before" is novel
coverage while "+1 ctsel" is not.

:class:`CoverageMap` accumulates keys across a campaign and records the
sample index that reached each key first — the dashboard's coverage-growth
table reads straight out of it, and its dict form round-trips through the
campaign checkpoints.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

#: Deterministic counter families admitted as coverage signals, and how
#: each is keyed.  ``exact`` families key on presence alone; ``bucketed``
#: families key on the bit length of the accumulated value.
COUNTER_FAMILIES = {
    "exact": ("statics.certifier.rule.",),
    "bucketed": ("core.repair.", "opt.pass."),
}

#: Counter suffixes never admitted (wall-clock measurements).
_EXCLUDED_SUFFIXES = (".seconds",)


def value_bucket(value: float) -> int:
    """Bit-length bucket of a counter value (0 for non-positive)."""
    v = int(value)
    return v.bit_length() if v > 0 else 0


def counter_keys(counters: Optional[dict]) -> set:
    """Coverage keys from one sample's counter delta (see module doc)."""
    keys: set = set()
    if not counters:
        return keys
    for name, value in counters.items():
        if name.endswith(_EXCLUDED_SUFFIXES):
            continue
        if name.startswith(COUNTER_FAMILIES["exact"]):
            keys.add(f"ctr:{name}")
        elif name.startswith(COUNTER_FAMILIES["bucketed"]):
            keys.add(f"ctr:{name}:b{value_bucket(value)}")
        elif name == "opt.fixpoint_iterations":
            keys.add(f"ctr:{name}:b{value_bucket(value)}")
        elif name.startswith("fuzz.oracle.") and name.endswith(".failed"):
            keys.add(f"ctr:{name}")
    return keys


def branch_edge_keys(
    module,
    entry: str,
    vectors: Sequence[Sequence[object]],
    backend: str = "compiled",
) -> set:
    """Block-transition edges of ``module`` traced over ``vectors``.

    The backend is pinned (default ``compiled``) rather than read from
    ``REPRO_BACKEND``: all backends produce identical traces, but pinning
    keeps the per-sample cost independent of the environment.
    """
    from repro.exec.backend import make_executor, run_many

    executor = make_executor(
        module, backend=backend, strict_memory=False, record_trace=True
    )
    keys: set = set()
    for result in run_many(executor, entry, vectors):
        previous = None
        for site in result.trace.instructions:
            if previous is not None:
                if site.function != previous.function:
                    keys.add(f"call:{previous.function}->{site.function}")
                elif site.block != previous.block:
                    keys.add(
                        f"edge:{site.function}:"
                        f"{previous.block}->{site.block}"
                    )
            previous = site
    return keys


def sample_keys(
    module,
    entry: str,
    vectors: Sequence[Sequence[object]],
    counters: Optional[dict],
) -> set:
    """The full coverage key set for one sample."""
    try:
        edges = branch_edge_keys(module, entry, vectors)
    except Exception:
        # A sample the executor rejects still has counter coverage; the
        # oracle battery reports the execution problem on its own.
        edges = set()
    return edges | counter_keys(counters)


class CoverageMap:
    """Campaign-global coverage: key -> sample index that reached it first."""

    def __init__(self) -> None:
        self.first_seen: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self.first_seen)

    def __contains__(self, key: str) -> bool:
        return key in self.first_seen

    def observe(self, keys: Iterable[str], index: int) -> list:
        """Fold one sample's keys in; return its novel keys, sorted."""
        new = sorted(k for k in keys if k not in self.first_seen)
        for key in new:
            self.first_seen[key] = index
        return new

    def as_dict(self) -> dict:
        return {"first_seen": dict(sorted(self.first_seen.items()))}

    @classmethod
    def from_dict(cls, record: dict) -> "CoverageMap":
        cover = cls()
        cover.first_seen = {
            str(k): int(v) for k, v in record.get("first_seen", {}).items()
        }
        return cover

    def growth(self, checkpoints: Sequence[int]) -> list:
        """Cumulative key counts at the given sample-index checkpoints."""
        indices = sorted(self.first_seen.values())
        out = []
        for bound in checkpoints:
            count = 0
            for idx in indices:
                if idx >= bound:
                    break
                count += 1
            out.append(count)
        return out
