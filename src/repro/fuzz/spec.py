"""Structured MiniC program specs — the fuzzer's genotype.

The generator does not emit MiniC text directly: it builds a small tree of
frozen dataclasses (a :class:`ProgramSpec`) and renders that to source.
The indirection is what makes delta-debugging tractable — the minimizer
shrinks the *tree* (drop a statement, inline an ``if`` arm, collapse an
expression to one of its operands) and re-renders, instead of trying to
edit text, and every candidate reduction is re-validated by simply
recompiling the render (see :mod:`repro.fuzz.minimize`).

The spec deliberately covers the whole MiniC surface the repair pipeline
accepts: secret/public scalar and pointer parameters, const and writable
globals, fixed-size local arrays, nested ``if``/``for`` with static
bounds, calls (including pointer arguments), the ``?:`` ctsel idiom,
casts, and the full operator set.  Indices are always rendered masked to
the array size (sizes are powers of two), so every rendered program is
memory safe by construction — out-of-bounds behaviour is the *repair
transform's* concern, and feeding it unsafe originals would make the
strict-memory semantic oracle ill-defined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

# -- expressions -------------------------------------------------------------


@dataclass(frozen=True)
class ConstE:
    value: int


@dataclass(frozen=True)
class VarE:
    name: str


@dataclass(frozen=True)
class LoadE:
    """``array[index & (size-1)]`` — the mask is added by the renderer."""

    array: str
    index: "Expr"
    mask: int  # size-1; 0 means "render the index unmasked (already safe)"


@dataclass(frozen=True)
class UnE:
    op: str  # - ! ~
    operand: "Expr"


@dataclass(frozen=True)
class BinE:
    op: str
    lhs: "Expr"
    rhs: "Expr"


@dataclass(frozen=True)
class TernE:
    cond: "Expr"
    if_true: "Expr"
    if_false: "Expr"


@dataclass(frozen=True)
class CastE:
    type_name: str  # u8 | u32 | uint
    operand: "Expr"


@dataclass(frozen=True)
class CallE:
    """A call; pointer arguments are array *names* (MiniC requires that)."""

    callee: str
    args: tuple  # of Expr (scalars) or str (array names, for pointer params)


Expr = Union[ConstE, VarE, LoadE, UnE, BinE, TernE, CastE, CallE]


# -- statements --------------------------------------------------------------


@dataclass(frozen=True)
class DeclS:
    type_name: str
    name: str
    init: Expr


@dataclass(frozen=True)
class ArrayDeclS:
    elem_type: str
    name: str
    size: int  # power of two
    inits: tuple  # of int


@dataclass(frozen=True)
class AssignS:
    name: str
    value: Expr


@dataclass(frozen=True)
class StoreS:
    array: str
    index: Expr
    mask: int
    value: Expr


@dataclass(frozen=True)
class IfS:
    cond: Expr
    then_body: tuple  # of Stmt
    else_body: tuple  # of Stmt


@dataclass(frozen=True)
class ForS:
    var: str
    bound: int  # literal constant bound, counter runs 0..bound-1
    body: tuple  # of Stmt


@dataclass(frozen=True)
class ReturnS:
    value: Expr


@dataclass(frozen=True)
class ExprStmtS:
    expr: Expr


Stmt = Union[DeclS, ArrayDeclS, AssignS, StoreS, IfS, ForS, ReturnS, ExprStmtS]


# -- top level ---------------------------------------------------------------


@dataclass(frozen=True)
class ParamSpec:
    name: str
    type_name: str  # uint | u32 | u8
    pointer: bool = False
    secret: bool = False
    size: int = 0  # logical array length for pointer params (power of two)


@dataclass(frozen=True)
class GlobalSpec:
    name: str
    elem_type: str
    size: int
    inits: tuple  # of int
    const: bool = True


@dataclass(frozen=True)
class FuncSpec:
    name: str
    return_type: str
    params: tuple  # of ParamSpec
    body: tuple  # of Stmt


@dataclass(frozen=True)
class ProgramSpec:
    globals: tuple  # of GlobalSpec
    functions: tuple  # of FuncSpec; the last one is the entry point

    @property
    def entry(self) -> str:
        return self.functions[-1].name

    @property
    def entry_func(self) -> FuncSpec:
        return self.functions[-1]


# -- rendering ---------------------------------------------------------------

_TIGHT = {"*", "/", "%"}


def render_expr(expr: Expr) -> str:
    if isinstance(expr, ConstE):
        return str(expr.value)
    if isinstance(expr, VarE):
        return expr.name
    if isinstance(expr, LoadE):
        return f"{expr.array}[{_render_index(expr)}]"
    if isinstance(expr, UnE):
        return f"{expr.op}({render_expr(expr.operand)})"
    if isinstance(expr, BinE):
        return f"({render_expr(expr.lhs)} {expr.op} {render_expr(expr.rhs)})"
    if isinstance(expr, TernE):
        return (
            f"(({render_expr(expr.cond)}) ? ({render_expr(expr.if_true)}) "
            f": ({render_expr(expr.if_false)}))"
        )
    if isinstance(expr, CastE):
        return f"(({expr.type_name}) ({render_expr(expr.operand)}))"
    if isinstance(expr, CallE):
        args = ", ".join(
            arg if isinstance(arg, str) else render_expr(arg)
            for arg in expr.args
        )
        return f"{expr.callee}({args})"
    raise TypeError(f"unknown expression {expr!r}")


def _render_index(access) -> str:
    if access.mask <= 0:
        return render_expr(access.index)
    return f"({render_expr(access.index)}) & {access.mask}"


def render_stmt(stmt: Stmt, indent: int) -> list:
    pad = "  " * indent
    if isinstance(stmt, DeclS):
        return [f"{pad}{stmt.type_name} {stmt.name} = {render_expr(stmt.init)};"]
    if isinstance(stmt, ArrayDeclS):
        init = ""
        if stmt.inits:
            init = " = {" + ", ".join(str(v) for v in stmt.inits) + "}"
        return [f"{pad}{stmt.elem_type} {stmt.name}[{stmt.size}]{init};"]
    if isinstance(stmt, AssignS):
        return [f"{pad}{stmt.name} = {render_expr(stmt.value)};"]
    if isinstance(stmt, StoreS):
        return [
            f"{pad}{stmt.array}[{_render_index(stmt)}] = "
            f"{render_expr(stmt.value)};"
        ]
    if isinstance(stmt, IfS):
        lines = [f"{pad}if ({render_expr(stmt.cond)}) {{"]
        for inner in stmt.then_body:
            lines.extend(render_stmt(inner, indent + 1))
        if stmt.else_body:
            lines.append(f"{pad}}} else {{")
            for inner in stmt.else_body:
                lines.extend(render_stmt(inner, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ForS):
        lines = [
            f"{pad}for (uint {stmt.var} = 0; {stmt.var} < {stmt.bound}; "
            f"{stmt.var} = {stmt.var} + 1) {{"
        ]
        for inner in stmt.body:
            lines.extend(render_stmt(inner, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ReturnS):
        return [f"{pad}return {render_expr(stmt.value)};"]
    if isinstance(stmt, ExprStmtS):
        return [f"{pad}{render_expr(stmt.expr)};"]
    raise TypeError(f"unknown statement {stmt!r}")


def render_param(param: ParamSpec) -> str:
    secret = "secret " if param.secret else ""
    star = "*" if param.pointer else ""
    return f"{secret}{param.type_name} {star}{param.name}"


def render_program(spec: ProgramSpec) -> str:
    """Deterministic MiniC source for ``spec`` (stable across processes)."""
    lines: list = []
    for glob in spec.globals:
        const = "const " if glob.const else ""
        init = ""
        if glob.inits:
            init = " = {" + ", ".join(str(v) for v in glob.inits) + "}"
        lines.append(f"{const}{glob.elem_type} {glob.name}[{glob.size}]{init};")
    if spec.globals:
        lines.append("")
    for func in spec.functions:
        params = ", ".join(render_param(p) for p in func.params)
        lines.append(f"{func.return_type} {func.name}({params}) {{")
        for stmt in func.body:
            lines.extend(render_stmt(stmt, 1))
        lines.append("}")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
