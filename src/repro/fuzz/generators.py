"""Seeded program generators for the differential fuzzer.

Two generator families feed :mod:`repro.fuzz.engine`:

* :func:`generate_program` — well-typed MiniC :class:`~repro.fuzz.spec.ProgramSpec`
  trees: secret/public parameters, const and writable globals, fixed local
  arrays, nested ``if``/``for`` with static bounds, helper calls with
  pointer arguments, ``?:`` selections, casts, the full operator set.
  Every rendered program parses, compiles (including full unrolling) and
  validates cleanly; array indices are masked to power-of-two sizes so the
  *original* program is memory safe and the strict-memory semantic oracle
  is well-defined.
* :func:`random_ir_module` — straight IR-level modules in the shape of the
  property-test strategies (acyclic single-function DAGs), for fuzzing the
  pipeline below the frontend.

Both are driven by a plain :class:`random.Random` so a ``(seed, config)``
pair reproduces a sample byte-for-byte with no third-party dependency.
The Hypothesis strategies that used to live in
``tests/property/generators.py`` are now :mod:`repro.fuzz.strategies`; the
lazy re-export at the bottom keeps them importable from here without
making Hypothesis a runtime requirement of ``lif fuzz``.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Optional

from repro.fuzz.spec import (
    ArrayDeclS,
    AssignS,
    BinE,
    CallE,
    CastE,
    ConstE,
    DeclS,
    ExprStmtS,
    ForS,
    FuncSpec,
    GlobalSpec,
    IfS,
    LoadE,
    ParamSpec,
    ProgramSpec,
    ReturnS,
    StoreS,
    TernE,
    UnE,
    VarE,
)

_SCALAR_TYPES = ("uint", "uint", "uint", "u32", "u8")
_BINOPS = (
    "+", "-", "*", "&", "|", "^", "<<", ">>",
    "==", "!=", "<", "<=", ">", ">=", "/", "%", "&&", "||",
)
_UNOPS = ("-", "!", "~")
_INTERESTING = (0, 1, 2, 3, 5, 7, 8, 15, 42, 255, 256, 1023, (1 << 31) - 1)


@dataclass(frozen=True)
class FuzzConfig:
    """Size and feature knobs of the MiniC generator.

    The defaults keep one sample's full oracle battery in the low tens of
    milliseconds so CI smoke runs stay cheap; crank the ``max_*`` knobs up
    for deeper local campaigns.
    """

    max_helpers: int = 2
    max_stmts: int = 4          # statements per block, before the return
    max_block_depth: int = 2    # if/for nesting
    max_expr_depth: int = 3
    max_loop_bound: int = 3
    max_arrays: int = 2         # local arrays per function
    array_sizes: tuple = (2, 4, 8)
    max_entry_arrays: int = 2
    max_entry_scalars: int = 3
    allow_loops: bool = True
    allow_calls: bool = True
    allow_globals: bool = True
    #: permit arbitrary (possibly secret-tainted) load/store indices; when
    #: off, indices are loop counters and constants only, biasing towards
    #: data-consistent programs
    allow_secret_indices: bool = True
    #: every Nth sample is an IR-level module instead of MiniC (0 = never)
    ir_fraction: int = 4

    def as_dict(self) -> dict:
        record = dataclasses.asdict(self)
        record["array_sizes"] = list(self.array_sizes)
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "FuzzConfig":
        fields = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in record.items() if k in fields}
        if "array_sizes" in kwargs:
            kwargs["array_sizes"] = tuple(kwargs["array_sizes"])
        return cls(**kwargs)


@dataclass
class _Scope:
    """Names visible at the current generation point."""

    scalars: list          # [(name, type)] — assignable scalars
    counters: list         # [name] — loop counters (readable, not assignable)
    arrays: list           # [(name, elem_type, size, writable)]

    def child(self) -> "_Scope":
        return _Scope(list(self.scalars), list(self.counters), list(self.arrays))


class _FuncGen:
    """Generates one function body; owns the fresh-name counters."""

    def __init__(self, rng: random.Random, config: FuzzConfig, callees: list):
        self.rng = rng
        self.config = config
        self.callees = callees  # [FuncSpec] eligible helpers
        self._next = {"v": 0, "a": 0, "i": 0}

    def fresh(self, prefix: str) -> str:
        name = f"{prefix}{self._next[prefix]}"
        self._next[prefix] += 1
        return name

    # -- expressions ---------------------------------------------------------

    def expr(self, scope: _Scope, depth: int):
        rng = self.rng
        if depth <= 0 or rng.random() < 0.25:
            return self._leaf(scope)
        kind = rng.random()
        if kind < 0.55:
            return BinE(
                rng.choice(_BINOPS),
                self.expr(scope, depth - 1),
                self.expr(scope, depth - 1),
            )
        if kind < 0.65:
            return UnE(rng.choice(_UNOPS), self.expr(scope, depth - 1))
        if kind < 0.78:
            return TernE(
                self.expr(scope, depth - 1),
                self.expr(scope, depth - 1),
                self.expr(scope, depth - 1),
            )
        if kind < 0.86:
            return CastE(rng.choice(("u8", "u32", "uint")),
                         self.expr(scope, depth - 1))
        if kind < 0.95 and scope.arrays:
            return self._load(scope, depth - 1)
        call = self._call(scope, depth - 1)
        if call is not None:
            return call
        return self._leaf(scope)

    def _leaf(self, scope: _Scope):
        rng = self.rng
        readable = scope.scalars + [(c, "uint") for c in scope.counters]
        roll = rng.random()
        if readable and roll < 0.55:
            return VarE(rng.choice(readable)[0])
        if scope.arrays and roll < 0.75:
            return self._load(scope, 0)
        return ConstE(rng.choice(_INTERESTING))

    def _index(self, scope: _Scope, depth: int):
        if not self.config.allow_secret_indices:
            if scope.counters and self.rng.random() < 0.6:
                return VarE(self.rng.choice(scope.counters))
            return ConstE(self.rng.randrange(0, 8))
        return self.expr(scope, min(depth, 1))

    def _load(self, scope: _Scope, depth: int):
        name, _elem, size, _writable = self.rng.choice(scope.arrays)
        return LoadE(name, self._index(scope, depth), size - 1)

    def _call(self, scope: _Scope, depth: int) -> Optional[CallE]:
        if not self.callees:
            return None
        callee = self.rng.choice(self.callees)
        args: list = []
        for param in callee.params:
            if param.pointer:
                candidates = [
                    a for a in scope.arrays
                    if a[2] >= param.size and a[3]
                ]
                if not candidates:
                    return None
                args.append(self.rng.choice(candidates)[0])
            else:
                args.append(self.expr(scope, min(depth, 1)))
        return CallE(callee.name, tuple(args))

    # -- statements ----------------------------------------------------------

    def block(self, scope: _Scope, depth: int, in_branch: bool) -> tuple:
        statements: list = []
        for _ in range(self.rng.randint(1, self.config.max_stmts)):
            statements.append(self.stmt(scope, depth, in_branch))
        return tuple(statements)

    def stmt(self, scope: _Scope, depth: int, in_branch: bool):
        rng = self.rng
        cfg = self.config
        roll = rng.random()
        if roll < 0.28:
            name = self.fresh("v")
            decl = DeclS(rng.choice(_SCALAR_TYPES), name,
                         self.expr(scope, cfg.max_expr_depth))
            scope.scalars.append((name, decl.type_name))
            return decl
        if roll < 0.40 and scope.scalars:
            target = rng.choice(scope.scalars)[0]
            return AssignS(target, self.expr(scope, cfg.max_expr_depth))
        if roll < 0.52:
            writable = [a for a in scope.arrays if a[3]]
            if writable:
                name, _elem, size, _w = rng.choice(writable)
                return StoreS(name, self._index(scope, 1), size - 1,
                              self.expr(scope, cfg.max_expr_depth))
        if roll < 0.60 and self._next["a"] < cfg.max_arrays:
            name = self.fresh("a")
            size = rng.choice(cfg.array_sizes)
            elem = rng.choice(("uint", "u32", "u8"))
            inits = tuple(
                rng.randrange(0, 256)
                for _ in range(rng.randint(0, size))
            )
            scope.arrays.append((name, elem, size, True))
            return ArrayDeclS(elem, name, size, inits)
        if roll < 0.74 and depth > 0:
            then_scope = scope.child()
            then_body = self.block(then_scope, depth - 1, True)
            else_body: tuple = ()
            if rng.random() < 0.6:
                else_scope = scope.child()
                else_body = self.block(else_scope, depth - 1, True)
            return IfS(self.expr(scope, cfg.max_expr_depth),
                       then_body, else_body)
        if roll < 0.86 and depth > 0 and cfg.allow_loops:
            var = self.fresh("i")
            body_scope = scope.child()
            body_scope.counters.append(var)
            return ForS(var, rng.randint(1, cfg.max_loop_bound),
                        self.block(body_scope, depth - 1, in_branch))
        if roll < 0.92 and in_branch:
            return ReturnS(self.expr(scope, cfg.max_expr_depth))
        call = self._call(scope, 1) if cfg.allow_calls else None
        if call is not None:
            return ExprStmtS(call)
        return ExprStmtS(self.expr(scope, cfg.max_expr_depth))


def _generate_function(
    rng: random.Random,
    config: FuzzConfig,
    name: str,
    callees: list,
    global_arrays: list,
    is_entry: bool,
) -> FuncSpec:
    gen = _FuncGen(rng, config, callees if config.allow_calls else [])
    params: list = []
    n_arrays = rng.randint(1 if is_entry else 0, config.max_entry_arrays)
    n_scalars = rng.randint(1, config.max_entry_scalars)
    for i in range(n_arrays):
        params.append(ParamSpec(
            name=f"p{i}",
            type_name=rng.choice(("uint", "u32", "u8")),
            pointer=True,
            secret=rng.random() < 0.5,
            size=rng.choice(config.array_sizes),
        ))
    for i in range(n_scalars):
        params.append(ParamSpec(
            name=f"n{i}",
            type_name=rng.choice(("uint", "u32", "u8")),
            secret=rng.random() < 0.4,
        ))
    scope = _Scope(
        scalars=[(p.name, p.type_name) for p in params if not p.pointer],
        counters=[],
        arrays=[(p.name, p.type_name, p.size, True)
                for p in params if p.pointer] + list(global_arrays),
    )
    body = list(gen.block(scope, config.max_block_depth, False))
    body.append(ReturnS(gen.expr(scope, config.max_expr_depth)))
    return FuncSpec(
        name=name,
        return_type=rng.choice(("uint", "u32")),
        params=tuple(params),
        body=tuple(body),
    )


def generate_program(seed: int, config: Optional[FuzzConfig] = None) -> ProgramSpec:
    """A reproducible, well-typed MiniC program spec for ``seed``."""
    config = config or FuzzConfig()
    rng = random.Random(seed)

    globals_: list = []
    if config.allow_globals and rng.random() < 0.5:
        for i in range(rng.randint(1, 2)):
            size = rng.choice(config.array_sizes)
            elem = rng.choice(("uint", "u32", "u8"))
            const = rng.random() < 0.7
            inits = tuple(rng.randrange(0, 256) for _ in range(size))
            globals_.append(GlobalSpec(f"g{i}", elem, size, inits, const))

    global_arrays = [
        (g.name, g.elem_type, g.size, not g.const) for g in globals_
    ]

    functions: list = []
    n_helpers = rng.randint(0, config.max_helpers)
    for index in range(n_helpers):
        functions.append(_generate_function(
            rng, config, f"helper{index}", list(functions), global_arrays,
            is_entry=False,
        ))
    functions.append(_generate_function(
        rng, config, "fuzz_entry", list(functions), global_arrays,
        is_entry=True,
    ))
    return ProgramSpec(tuple(globals_), tuple(functions))


# -- argument generation -----------------------------------------------------

_TYPE_MASK = {"uint": (1 << 64) - 1, "u32": (1 << 32) - 1, "u8": 255}


def generate_inputs(
    spec: ProgramSpec,
    seed: int,
    runs: int = 3,
    secret_variants: int = 2,
) -> list:
    """Argument vectors for the entry function, derived only from ``(spec
    signature, seed)``.

    Returns ``runs`` independent vectors followed by ``secret_variants``
    vectors that differ from the *first* vector only in ``secret``
    parameters — the pairs the isochronicity oracle compares.
    """
    rng = random.Random(seed ^ 0x5EED)
    params = spec.entry_func.params
    vectors: list = []
    for _ in range(max(1, runs)):
        vectors.append([_argument(rng, p) for p in params])
    base = vectors[0]
    for _ in range(secret_variants):
        variant: list = []
        for value, param in zip(base, params):
            if param.secret:
                variant.append(_argument(rng, param))
            else:
                variant.append(list(value) if isinstance(value, list) else value)
        vectors.append(variant)
    return vectors


def secret_family(vectors: list, runs: int = 3) -> list:
    """The base vector plus the secret-only variants from a
    :func:`generate_inputs` result (``runs`` must match the value used
    there).  These are the vectors the certified-vs-dynamic cross-checks
    compare: they differ only in ``secret`` parameters."""
    if len(vectors) <= runs:
        return list(vectors)
    return [vectors[0]] + list(vectors[runs:])


def _argument(rng: random.Random, param: ParamSpec):
    mask = _TYPE_MASK[param.type_name]
    bound = min(mask, 1 << 16)
    if param.pointer:
        return [rng.randint(0, bound) & mask for _ in range(param.size)]
    return rng.randint(0, bound) & mask


# -- IR-level generation -----------------------------------------------------

IR_ARRAY_CELLS = 4


def random_ir_module(
    seed: int,
    max_blocks: int = 5,
    max_instrs: int = 5,
    array_cells: int = IR_ARRAY_CELLS,
    in_bounds: bool = True,
):
    """A random acyclic single-function IR module (seeded, not Hypothesis).

    Mirrors :func:`repro.fuzz.strategies.ir_modules`: one pointer parameter
    of ``array_cells`` cells plus two integer parameters, a DAG of blocks in
    topological order, and uses only of dominating definitions.  With
    ``in_bounds=True`` (the engine's setting) memory indices stay inside the
    array so the strict-memory semantic oracle is well-defined; property
    tests pass ``False`` to exercise the out-of-bounds repair paths.
    """
    from repro.ir.builder import IRBuilder
    from repro.ir.function import Function, Param
    from repro.ir.module import Module
    from repro.ir.values import Const, Var

    rng = random.Random(seed)
    n_blocks = rng.randint(1, max_blocks)
    module = Module(f"ir_fuzz_{seed}")
    function = Function(
        "f", [Param("arr", "ptr"), Param("x", "int"), Param("y", "int")]
    )
    module.add_function(function)
    builder = IRBuilder(function, name_prefix="v")

    labels = [f"b{i}" for i in range(n_blocks)]
    for label in labels:
        function.add_block(label)

    binops = ("+", "-", "*", "&", "|", "^", "<<", ">>", "==", "!=", "<", "<=")
    entry_values: list = [Var("x"), Var("y"), Const(rng.randint(-8, 8))]

    for position, label in enumerate(labels):
        builder.position_at(function.blocks[label])
        available = list(entry_values)
        for _ in range(rng.randint(1, max_instrs)):
            kind = rng.choice(("binop", "unop", "ctsel", "load", "store"))
            value = None
            if kind == "binop":
                value = builder.binop(
                    rng.choice(binops),
                    rng.choice(available),
                    rng.choice(available + [Const(rng.randint(-8, 8))]),
                )
            elif kind == "unop":
                value = builder.unop(rng.choice(("-", "!", "~")),
                                     rng.choice(available))
            elif kind == "ctsel":
                value = builder.ctsel(rng.choice(available),
                                      rng.choice(available),
                                      rng.choice(available))
            else:
                if in_bounds:
                    index = Const(rng.randrange(0, array_cells))
                else:
                    index = Const(rng.randint(-2, array_cells + 1))
                if kind == "load":
                    value = builder.load("arr", index)
                else:
                    builder.store(rng.choice(available), "arr", index)
            if value is not None:
                available.append(value)
                if position == 0:
                    entry_values.append(value)

        if position == n_blocks - 1:
            builder.ret(rng.choice(available))
        else:
            successors = list(range(position + 1, n_blocks))
            if rng.random() < 0.5:
                builder.br(
                    rng.choice(available),
                    labels[rng.choice(successors)],
                    labels[rng.choice(successors)],
                )
            else:
                builder.jmp(labels[rng.choice(successors)])
    return module


def ir_module_inputs(seed: int, runs: int = 4, array_cells: int = IR_ARRAY_CELLS) -> list:
    """Argument vectors matching :func:`random_ir_module`'s signature."""
    rng = random.Random(seed ^ 0x1B)
    return [
        [
            [rng.randint(-100, 100) for _ in range(array_cells)],
            rng.randint(-100, 100),
            rng.randint(-100, 100),
        ]
        for _ in range(max(2, runs))
    ]


# -- Hypothesis strategies (lazy; see module docstring) ----------------------

_STRATEGY_EXPORTS = ("ir_modules", "argument_lists", "ARRAY_CELLS")


def __getattr__(name: str):
    if name in _STRATEGY_EXPORTS:
        from repro.fuzz import strategies

        return getattr(strategies, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
