"""The differential engine: every oracle pair cross-checked on one sample.

A *sample* is an IR module (compiled from a generated MiniC program, or
produced directly by the IR-level generator) plus a deterministic set of
argument vectors.  :func:`run_oracles` pushes it through the full
pipeline and reports one :class:`OracleResult` per cross-check:

========================  ====================================================
oracle                    disagreement it detects
========================  ====================================================
``repair``                the repair pipeline crashes or emits invalid IR
``semantics``             original vs repaired outputs differ on matched
                          public inputs (Theorem 1)
``backend``               interpreter vs compiled backend disagree on values,
                          traces, cycles or step counts (either variant)
``isochronicity``         repaired traces vary across inputs/secret pairs:
                          operation variance, unpredicted data variance, or a
                          memory-safety violation (Covenant 1)
``static_dynamic``        the static certifier and the dynamic covenant
                          disagree (certified-but-variant, or a genuine
                          residual leak after repair)
``cache_power``           the abstract-cache certifier calls the repaired
                          module cache-invariant but its simulated hit/miss
                          signature varies under secret changes, or the
                          power balance check finds a genuine (secret
                          branch) imbalance after repair
``opt_sanitize``          the optimizer changes semantics, breaks invariance,
                          or trips the per-pass leakage sanitizer
                          (``REPRO_OPT_SANITIZE`` machinery, forced on)
========================  ====================================================

``repair_fn`` is injectable so tests can plant a deliberately broken
rewriting rule and assert the harness catches and minimizes it.
All detail strings are deterministic — no timing, no object addresses —
so a whole campaign's output is byte-for-byte reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.ir.module import Module

#: Oracle names in report order.
ORACLES = (
    "repair",
    "semantics",
    "backend",
    "isochronicity",
    "static_dynamic",
    "cache_power",
    "opt_sanitize",
)


class SampleInvalid(Exception):
    """The sample does not compile/validate — not a pipeline disagreement.

    Raised for minimizer candidates that broke scoping or typing; the
    shrinker treats it as "predicate not satisfied", never as a finding.
    """


@dataclass(frozen=True)
class OracleResult:
    name: str
    ok: bool
    detail: str = ""

    def as_dict(self) -> dict:
        return {"name": self.name, "ok": self.ok, "detail": self.detail}


@dataclass
class OracleReport:
    """All cross-check verdicts for one sample."""

    entry: str
    results: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def failed(self) -> tuple:
        return tuple(r.name for r in self.results if not r.ok)

    def result(self, name: str) -> Optional[OracleResult]:
        for entry in self.results:
            if entry.name == name:
                return entry
        return None

    def as_dict(self) -> dict:
        return {
            "entry": self.entry,
            "ok": self.ok,
            "results": [r.as_dict() for r in self.results],
        }

    def summary(self) -> str:
        bad = ", ".join(
            f"{r.name}[{r.detail}]" for r in self.results if not r.ok
        )
        return f"@{self.entry}: " + (bad if bad else "all oracles agree")


def compile_sample(source: str, name: str = "sample") -> Module:
    """Compile MiniC source, mapping front-end failures to SampleInvalid."""
    from repro.frontend import compile_source

    try:
        return compile_source(source, name=name)
    except Exception as error:  # parse/codegen/unroll/validate failure
        raise SampleInvalid(f"{type(error).__name__}: {error}") from error


def run_oracles(
    module: Module,
    entry: str,
    inputs: Sequence[Sequence[object]],
    secret_inputs: Optional[Sequence[Sequence[object]]] = None,
    repair_fn: Optional[Callable[[Module], Module]] = None,
    backends: tuple = ("interp", "compiled"),
) -> OracleReport:
    """Cross-check every oracle pair on ``module``/``entry``.

    ``inputs`` are argument vectors for the *original* signature; vectors
    must share array sizes (the isochronicity comparisons require it).
    ``secret_inputs`` are the vectors that differ from each other only in
    ``secret``-qualified parameters — the family the certifier's verdict is
    compared against (certification promises *secret*-independence; public
    inputs may legitimately steer addresses).  Defaults to ``inputs``,
    which is correct when no parameter is marked secret (the analyses then
    treat every input as sensitive — the paper's stance).
    """
    from repro.obs import OBS

    report = OracleReport(entry=entry)
    results = report.results

    repaired, repair_result = _oracle_repair(module, repair_fn)
    results.append(repair_result)
    if repaired is None:
        # Without a repaired module no other cross-check is defined.
        if OBS.enabled:
            OBS.counter("fuzz.oracle.repair.failed")
        return report

    if secret_inputs is None:
        secret_inputs = inputs
    adapted = _adapt(module, entry, inputs)
    adapted_secret = _adapt(module, entry, secret_inputs)

    results.append(_oracle_semantics(module, repaired, entry, inputs, adapted))
    results.append(_oracle_backend(
        module, repaired, entry, inputs, adapted, backends
    ))
    invariance, iso_result = _oracle_isochronicity(
        module, repaired, entry, adapted
    )
    results.append(iso_result)
    results.append(_oracle_static_dynamic(
        module, repaired, entry, secret_inputs, adapted_secret
    ))
    results.append(_oracle_cache_power(
        module, repaired, entry, secret_inputs, adapted_secret
    ))
    results.append(_oracle_opt_sanitize(module, repaired, entry, adapted))

    if OBS.enabled:
        for result in results:
            OBS.counter(f"fuzz.oracle.{result.name}.checked")
            if not result.ok:
                OBS.counter(f"fuzz.oracle.{result.name}.failed")
    return report


# -- individual oracles ------------------------------------------------------


def _adapt(module: Module, entry: str, inputs) -> list:
    from repro.verify.covenant import adapt_inputs

    return adapt_inputs(module, entry, inputs)


def _oracle_repair(module, repair_fn):
    from repro.core.repair import repair_module
    from repro.ir.validate import diagnose_module

    repair = repair_fn or repair_module
    try:
        repaired = repair(module)
    except Exception as error:
        return None, OracleResult(
            "repair", False, f"exception {type(error).__name__}: {error}"
        )
    errors = [
        d.rule for d in diagnose_module(repaired) if d.severity == "error"
    ]
    if errors:
        return None, OracleResult(
            "repair", False, f"invalid IR after repair: {sorted(set(errors))}"
        )
    return repaired, OracleResult("repair", True)


def _oracle_semantics(module, repaired, entry, inputs, adapted):
    from repro.verify.isochronicity import compare_semantics

    try:
        preserved = compare_semantics(
            module, repaired, entry, inputs, adapted
        )
    except Exception as error:
        return OracleResult(
            "semantics", False, f"exception {type(error).__name__}: {error}"
        )
    if not preserved:
        return OracleResult(
            "semantics", False,
            "original and repaired outputs differ on matched inputs",
        )
    return OracleResult("semantics", True)


def _run_traced_many(module, entry, vectors, backend):
    from repro.exec.backend import make_executor, run_many

    executor = make_executor(
        module, backend=backend, strict_memory=False, record_trace=True
    )
    return run_many(executor, entry, vectors)


def _oracle_backend(module, repaired, entry, inputs, adapted, backends):
    if len(backends) < 2:
        return OracleResult("backend", True, "single backend; skipped")
    ref, alt = backends[0], backends[1]
    try:
        for label, mod, vectors in (
            ("original", module, inputs),
            ("repaired", repaired, adapted),
        ):
            # One executor per backend for the whole family; the batch
            # backend gets the vectors as a single lock-step dispatch.
            ref_results = _run_traced_many(mod, entry, vectors, ref)
            alt_results = _run_traced_many(mod, entry, vectors, alt)
            for index, (a, b) in enumerate(zip(ref_results, alt_results)):
                mismatch = _compare_runs(a, b)
                if mismatch:
                    return OracleResult(
                        "backend", False,
                        f"{ref} vs {alt} disagree on {label} input #{index}: "
                        f"{mismatch}",
                    )
    except Exception as error:
        return OracleResult(
            "backend", False, f"exception {type(error).__name__}: {error}"
        )
    return OracleResult("backend", True)


def _compare_runs(a, b) -> str:
    if a.outputs() != b.outputs():
        return "outputs"
    if a.cycles != b.cycles:
        return f"cycles ({a.cycles} != {b.cycles})"
    if a.steps != b.steps:
        return f"steps ({a.steps} != {b.steps})"
    if a.trace.operation_signature() != b.trace.operation_signature():
        return "operation trace"
    if a.trace.data_signature() != b.trace.data_signature():
        return "data trace"
    if len(a.violations) != len(b.violations):
        return "violation counts"
    return ""


def _oracle_isochronicity(module, repaired, entry, adapted):
    from repro.analysis.data_consistency import classify_data_consistency
    from repro.verify.isochronicity import check_invariance

    try:
        invariance = check_invariance(repaired, entry, adapted)
        prediction = classify_data_consistency(module, entry)
    except Exception as error:
        return None, OracleResult(
            "isochronicity", False,
            f"exception {type(error).__name__}: {error}",
        )
    problems = []
    if not invariance.operation_invariant:
        problems.append("operation trace varies across inputs")
    elif len(set(invariance.cycles)) > 1:
        problems.append("cycle counts vary despite operation invariance")
    if not invariance.memory_safe:
        problems.append(
            f"{len(invariance.violations)} access violation(s) in repaired code"
        )
    if prediction.repaired_data_invariant and not invariance.data_invariant:
        problems.append(
            "data trace varies although the classifier predicted invariance"
        )
    if problems:
        return invariance, OracleResult(
            "isochronicity", False, "; ".join(problems)
        )
    return invariance, OracleResult("isochronicity", True)


def _oracle_static_dynamic(module, repaired, entry, secret_inputs,
                           adapted_secret):
    from repro.statics.certifier import certify_entry
    from repro.verify.isochronicity import check_invariance

    try:
        certification = certify_entry(repaired, entry)
    except Exception as error:
        return OracleResult(
            "static_dynamic", False,
            f"exception {type(error).__name__}: {error}",
        )
    if certification.genuine_failures:
        return OracleResult(
            "static_dynamic", False,
            "certifier found residual secret-steered branches after repair: "
            f"{certification.genuine_failures}",
        )
    if not certification.operation_leak_free:
        return OracleResult(
            "static_dynamic", False,
            "certifier found residual operation leaks after repair in "
            f"{certification.residual_functions}",
        )
    # Certification promises secret-independence, so the dynamic comparison
    # runs over vectors differing only in secret parameters.
    try:
        secret_invariance = check_invariance(repaired, entry, adapted_secret)
        if not secret_invariance.operation_invariant:
            return OracleResult(
                "static_dynamic", False,
                "certifier calls the repaired module operation-leak-free but "
                "its operation trace varies under secret changes",
            )
        if certification.all_certified and not secret_invariance.data_invariant:
            return OracleResult(
                "static_dynamic", False,
                "repaired module is CERTIFIED_CONSTANT_TIME but its data "
                "trace varies under secret changes",
            )
        # Sound direction on the original: a fully certified original must
        # be dynamically invariant under secret changes too.
        original_cert = certify_entry(module, entry)
        if original_cert.all_certified:
            original_invariance = check_invariance(module, entry, secret_inputs)
            if not original_invariance.isochronous:
                return OracleResult(
                    "static_dynamic", False,
                    "original is CERTIFIED_CONSTANT_TIME but dynamically "
                    "variant under secret changes",
                )
    except Exception as error:
        return OracleResult(
            "static_dynamic", False,
            f"exception {type(error).__name__}: {error}",
        )
    return OracleResult("static_dynamic", True)


def _oracle_cache_power(module, repaired, entry, secret_inputs,
                        adapted_secret):
    """Cross-check the cache/power channels of the static matrix.

    Sound direction only: a ``CERTIFIED_CACHE_INVARIANT`` repaired entry
    must produce one hit/miss signature across the secret-input family
    (the abstract interpretation over-approximates, so a static residual
    with a quiet simulator is conservatism, not a bug).  The power channel
    must have no genuine failures after repair — a remaining secret-branch
    cost imbalance means the repair left a secret branch behind.
    """
    from repro.statics.certifier import certify_matrix
    from repro.verify.isochronicity import check_cache_invariance

    try:
        arg_sizes = {
            param.name: len(arg)
            for param, arg in zip(
                module.functions[entry].params, secret_inputs[0]
            )
            if param.is_pointer and isinstance(arg, (list, tuple))
        }
        matrix = certify_matrix(
            repaired, entry=entry, channels=("cache", "power"),
            arg_sizes=arg_sizes,
        )
        cache_cert = matrix.cache.functions.get(entry)
        if cache_cert is not None and cache_cert.certified:
            dynamic = check_cache_invariance(repaired, entry, adapted_secret)
            if not dynamic.cache_invariant:
                return OracleResult(
                    "cache_power", False,
                    "repaired module is CERTIFIED_CACHE_INVARIANT but its "
                    "simulated hit/miss signature varies under secret "
                    "changes",
                )
        if matrix.power.genuine_failures:
            return OracleResult(
                "cache_power", False,
                "power balance check found secret-branch cost imbalance "
                f"after repair in {matrix.power.genuine_failures}",
            )
    except Exception as error:
        return OracleResult(
            "cache_power", False,
            f"exception {type(error).__name__}: {error}",
        )
    return OracleResult("cache_power", True)


def _oracle_opt_sanitize(module, repaired, entry, adapted):
    from repro.analysis.data_consistency import classify_data_consistency
    from repro.opt.pipeline import optimize
    from repro.opt.sanitize import LeakSanitizerError
    from repro.verify.isochronicity import check_invariance, compare_semantics

    try:
        optimized = optimize(repaired, sanitize=True)
    except LeakSanitizerError as error:
        return OracleResult(
            "opt_sanitize", False,
            f"sanitizer tripped on repaired code: {error}",
        )
    except Exception as error:
        return OracleResult(
            "opt_sanitize", False,
            f"exception {type(error).__name__}: {error}",
        )
    try:
        if not compare_semantics(
            repaired, optimized, entry, adapted, adapted,
            strict_original=False,
        ):
            return OracleResult(
                "opt_sanitize", False,
                "optimizing the repaired module changed its semantics",
            )
        invariance = check_invariance(optimized, entry, adapted)
        if not invariance.operation_invariant:
            return OracleResult(
                "opt_sanitize", False,
                "optimized repaired module lost operation invariance",
            )
        prediction = classify_data_consistency(module, entry)
        if prediction.repaired_data_invariant and not invariance.data_invariant:
            return OracleResult(
                "opt_sanitize", False,
                "optimized repaired module lost predicted data invariance",
            )
    except Exception as error:
        return OracleResult(
            "opt_sanitize", False,
            f"exception {type(error).__name__}: {error}",
        )
    return OracleResult("opt_sanitize", True)
