"""Differential fuzzing & metamorphic testing (``lif fuzz``).

The repo carries four independent oracles — the reference interpreter vs
the compiled backend, the dynamic Covenant 1 checker, the static
constant-time certifier, and the per-pass optimizer sanitizer.  This
package turns them into a bug-finding machine: a seeded generator of
well-typed MiniC programs (plus straight IR-level generators) feeds every
sample through the full pipeline and cross-checks each oracle pair; any
disagreement is shrunk by a delta-debugging minimizer and stored as a
reduced reproducer in the deterministic on-disk corpus (``tests/corpus/``),
which is replayed as ordinary pytest cases.

* :mod:`repro.fuzz.spec` — the structured MiniC program representation
  the generator emits and the minimizer shrinks;
* :mod:`repro.fuzz.generators` — seeded (``random.Random``) MiniC and IR
  generators with size/feature knobs (:class:`FuzzConfig`);
* :mod:`repro.fuzz.strategies` — the Hypothesis strategies shared with
  the property tests (promoted from ``tests/property/generators.py``);
* :mod:`repro.fuzz.oracles` — the differential engine: the six oracle
  cross-checks over one sample;
* :mod:`repro.fuzz.minimize` — the deterministic delta-debugging shrinker;
* :mod:`repro.fuzz.corpus` — the reproducer store and replay loader;
* :mod:`repro.fuzz.engine` — the blind campaign driver behind ``lif fuzz``
  (``--seed/--iterations/--jobs/--minimize``), with process fan-out and
  per-oracle counters;
* :mod:`repro.fuzz.coverage` — deterministic coverage keys (branch/call
  edges plus whitelisted obs counter deltas) and the campaign-wide
  :class:`CoverageMap`;
* :mod:`repro.fuzz.mutate` — the pure ``(parent, seed)`` mutation engine:
  MiniC splice/tweak/grow and IR perturbations, with a memory-safety
  sanitizer and fresh-sample fallback;
* :mod:`repro.fuzz.campaign` — the coverage-guided campaign behind
  ``lif fuzz --mutate`` (``--cov/--checkpoint/--resume/--shards``):
  round-synchronized corpus evolution, sharded checkpoints, and
  byte-deterministic resume.

See ``docs/FUZZING.md`` for the oracle matrix, the coverage-guided
campaign design, and the corpus policy.
"""

from repro.fuzz.generators import (
    FuzzConfig,
    generate_inputs,
    generate_program,
    ir_module_inputs,
    random_ir_module,
    secret_family,
)
from repro.fuzz.spec import ProgramSpec, render_program

__all__ = [
    "FuzzConfig",
    "ProgramSpec",
    "generate_inputs",
    "generate_program",
    "ir_module_inputs",
    "random_ir_module",
    "render_program",
    "secret_family",
]
