"""The on-disk reproducer corpus (``tests/corpus/``).

Every failing sample a fuzz campaign finds is stored as a pair of files
named by a deterministic case id (seed + content hash, so two runs of the
same campaign write byte-identical corpora and distinct bugs never
collide):

* ``<case>.mc`` / ``<case>.ir`` — the (minimized) program text;
* ``<case>.json`` — metadata: kind, seed, entry point, the exact argument
  vectors, the oracle report at capture time, and a free-form triage note.

Corpus policy (see ``docs/FUZZING.md``): a case is committed either as a
**regression seed** for a bug that has since been fixed, or as a **hard
program** that stresses the pipeline; in both states every committed case
must pass all oracles at head.  The replay test
(``tests/integration/test_corpus_replay.py``) enforces that on every CI
run, which is what makes the corpus a standing gate rather than an
archive.  A case that *currently fails* belongs in a bug report, not in
the corpus.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

#: Repo-relative default; the CLI resolves it against the cwd.
DEFAULT_CORPUS_DIR = Path("tests") / "corpus"

_SOURCE_SUFFIX = {"minic": ".mc", "ir": ".ir"}


@dataclass
class CorpusCase:
    """One committed reproducer."""

    case_id: str
    kind: str  # "minic" | "ir"
    seed: int
    entry: str
    source: str
    inputs: list
    #: vectors differing only in secret params (None: all of ``inputs``)
    secret_inputs: Optional[list] = None
    failed: list = field(default_factory=list)  # oracle names at capture time
    note: str = ""
    report: Optional[dict] = None

    def as_dict(self) -> dict:
        return {
            "case_id": self.case_id,
            "kind": self.kind,
            "seed": self.seed,
            "entry": self.entry,
            "inputs": self.inputs,
            "secret_inputs": self.secret_inputs,
            "failed": list(self.failed),
            "note": self.note,
            "report": self.report,
        }

    @classmethod
    def from_dict(cls, record: dict, source: str) -> "CorpusCase":
        return cls(
            case_id=record["case_id"],
            kind=record["kind"],
            seed=record["seed"],
            entry=record["entry"],
            source=source,
            inputs=record["inputs"],
            secret_inputs=record.get("secret_inputs"),
            failed=list(record.get("failed", [])),
            note=record.get("note", ""),
            report=record.get("report"),
        )


def make_case_id(seed: int, source: str) -> str:
    digest = hashlib.sha256(source.encode()).hexdigest()[:10]
    return f"s{seed:010d}-{digest}"


def store_case(case: CorpusCase, directory) -> list:
    """Write the case pair; returns the written paths (source, json)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    source_path = directory / (case.case_id + _SOURCE_SUFFIX[case.kind])
    meta_path = directory / (case.case_id + ".json")
    source_path.write_text(case.source)
    meta_path.write_text(
        json.dumps(case.as_dict(), indent=2, sort_keys=True) + "\n"
    )
    return [source_path, meta_path]


def load_corpus(directory) -> list:
    """Every committed case, sorted by case id (deterministic replay order)."""
    directory = Path(directory)
    cases: list = []
    if not directory.is_dir():
        return cases
    for meta_path in sorted(directory.glob("*.json")):
        record = json.loads(meta_path.read_text())
        suffix = _SOURCE_SUFFIX[record["kind"]]
        source_path = meta_path.with_suffix(suffix)
        cases.append(CorpusCase.from_dict(record, source_path.read_text()))
    return cases


def replay_case(case: CorpusCase, repair_fn=None):
    """Re-run the full oracle battery on a committed case."""
    from repro.fuzz.oracles import compile_sample, run_oracles
    from repro.ir import parse_module

    if case.kind == "minic":
        module = compile_sample(case.source, name=case.case_id)
    else:
        module = parse_module(case.source, name=case.case_id)
    return run_oracles(
        module, case.entry, case.inputs,
        secret_inputs=case.secret_inputs, repair_fn=repair_fn,
    )
