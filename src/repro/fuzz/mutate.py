"""The mutation engine: splice/tweak/grow on MiniC specs and IR modules.

Mutations are the coverage-guided campaign's way off the blind generator's
distribution: instead of sampling a fresh program shape every iteration,
a coverage-novel *parent* from the corpus is perturbed —

* **tweak** — point changes that keep the shape: a constant becomes
  another interesting constant, a binary operator flips, a loop bound
  stretches, a ternary swaps its arms;
* **splice** — a top-level statement subtree from a *donor* corpus entry
  is transplanted into the parent's entry function;
* **grow** — fresh statements from the seeded generator's own statement
  machinery (:class:`repro.fuzz.generators._FuncGen`) are grafted before
  the final return, so mutated programs can exceed every ``FuzzConfig``
  size cap the blind generator respects.

Every mutator is a pure function of ``(parent, seed)`` — mutated samples
re-materialize identically in any process, which is what lets campaign
checkpoints store derivation *recipes* instead of program text.  Validity
is by construction-then-check: a candidate that fails to compile (spec) or
validate (IR) is retried with the next perturbation, and after
``REPRO_FUZZ_MUTATE_RETRIES`` (default 8) failed attempts the mutator
falls back to a fresh seeded sample so campaigns never stall.
"""

from __future__ import annotations

import dataclasses
import os
import random
import re
from typing import Optional

from repro.fuzz.generators import (
    _INTERESTING,
    FuzzConfig,
    _FuncGen,
    _Scope,
    generate_program,
    random_ir_module,
)
from repro.fuzz.spec import (
    ArrayDeclS,
    AssignS,
    BinE,
    CallE,
    CastE,
    ConstE,
    DeclS,
    ExprStmtS,
    ForS,
    FuncSpec,
    IfS,
    LoadE,
    ProgramSpec,
    ReturnS,
    StoreS,
    TernE,
    UnE,
    render_program,
)
from repro.obs import OBS

#: Bounded validity retries per mutation before the fresh-sample fallback.
MUTATE_RETRIES_ENV_VAR = "REPRO_FUZZ_MUTATE_RETRIES"
DEFAULT_MUTATE_RETRIES = 8

_BINOP_SWAPS = (
    "+", "-", "*", "&", "|", "^", "<<", ">>",
    "==", "!=", "<", "<=", ">", ">=", "/", "%",
)


def mutate_retries() -> int:
    raw = os.environ.get(MUTATE_RETRIES_ENV_VAR, "").strip()
    try:
        value = int(raw) if raw else DEFAULT_MUTATE_RETRIES
    except ValueError:
        return DEFAULT_MUTATE_RETRIES
    return max(1, value)


# -- MiniC spec mutation -----------------------------------------------------


def _map_expr(expr, visit):
    """Rebuild ``expr`` bottom-up, passing every node through ``visit``."""
    kind = type(expr)
    if kind is LoadE:
        expr = dataclasses.replace(expr, index=_map_expr(expr.index, visit))
    elif kind is UnE:
        expr = dataclasses.replace(expr, operand=_map_expr(expr.operand, visit))
    elif kind is BinE:
        expr = dataclasses.replace(
            expr,
            lhs=_map_expr(expr.lhs, visit),
            rhs=_map_expr(expr.rhs, visit),
        )
    elif kind is TernE:
        expr = dataclasses.replace(
            expr,
            cond=_map_expr(expr.cond, visit),
            if_true=_map_expr(expr.if_true, visit),
            if_false=_map_expr(expr.if_false, visit),
        )
    elif kind is CastE:
        expr = dataclasses.replace(expr, operand=_map_expr(expr.operand, visit))
    elif kind is CallE:
        expr = dataclasses.replace(
            expr,
            args=tuple(
                arg if isinstance(arg, str) else _map_expr(arg, visit)
                for arg in expr.args
            ),
        )
    return visit(expr)


def _map_stmt(stmt, visit_expr, visit_stmt):
    kind = type(stmt)
    if kind is DeclS:
        stmt = dataclasses.replace(stmt, init=_map_expr(stmt.init, visit_expr))
    elif kind is AssignS:
        stmt = dataclasses.replace(stmt, value=_map_expr(stmt.value, visit_expr))
    elif kind is StoreS:
        stmt = dataclasses.replace(
            stmt,
            index=_map_expr(stmt.index, visit_expr),
            value=_map_expr(stmt.value, visit_expr),
        )
    elif kind is IfS:
        stmt = dataclasses.replace(
            stmt,
            cond=_map_expr(stmt.cond, visit_expr),
            then_body=tuple(
                _map_stmt(s, visit_expr, visit_stmt) for s in stmt.then_body
            ),
            else_body=tuple(
                _map_stmt(s, visit_expr, visit_stmt) for s in stmt.else_body
            ),
        )
    elif kind is ForS:
        stmt = dataclasses.replace(
            stmt,
            body=tuple(
                _map_stmt(s, visit_expr, visit_stmt) for s in stmt.body
            ),
        )
    elif kind is ReturnS:
        stmt = dataclasses.replace(stmt, value=_map_expr(stmt.value, visit_expr))
    elif kind is ExprStmtS:
        stmt = dataclasses.replace(stmt, expr=_map_expr(stmt.expr, visit_expr))
    return visit_stmt(stmt)


def _map_program(spec: ProgramSpec, visit_expr, visit_stmt) -> ProgramSpec:
    functions = tuple(
        dataclasses.replace(
            func,
            body=tuple(
                _map_stmt(s, visit_expr, visit_stmt) for s in func.body
            ),
        )
        for func in spec.functions
    )
    return dataclasses.replace(spec, functions=functions)


class _SlotPicker:
    """Deterministic k-th-tweakable-node selection over one traversal."""

    __slots__ = ("target", "count", "fired")

    def __init__(self, target: int) -> None:
        self.target = target
        self.count = 0
        self.fired = False

    def take(self) -> bool:
        hit = self.count == self.target
        self.count += 1
        if hit:
            self.fired = True
        return hit


def _tweakable(node) -> bool:
    kind = type(node)
    return kind in (ConstE, BinE, UnE, TernE, ForS)


def _count_slots(spec: ProgramSpec) -> int:
    slots = [0]

    def visit_expr(expr):
        if _tweakable(expr):
            slots[0] += 1
        return expr

    def visit_stmt(stmt):
        if _tweakable(stmt):
            slots[0] += 1
        return stmt

    _map_program(spec, visit_expr, visit_stmt)
    return slots[0]


def _tweak(spec: ProgramSpec, rng: random.Random) -> Optional[ProgramSpec]:
    """Point-mutate one constant/operator/bound/ternary in the tree."""
    total = _count_slots(spec)
    if total == 0:
        return None
    picker = _SlotPicker(rng.randrange(total))

    def perturb(node):
        kind = type(node)
        if kind is ConstE:
            choice = rng.random()
            if choice < 0.6:
                return ConstE(rng.choice(_INTERESTING))
            if choice < 0.8:
                return ConstE(node.value + 1)
            return ConstE(node.value ^ 1)
        if kind is BinE:
            return dataclasses.replace(node, op=rng.choice(_BINOP_SWAPS))
        if kind is UnE:
            return dataclasses.replace(node, op=rng.choice(("-", "!", "~")))
        if kind is TernE:
            return dataclasses.replace(
                node, if_true=node.if_false, if_false=node.if_true
            )
        if kind is ForS:
            return dataclasses.replace(node, bound=rng.randint(1, node.bound + 2))
        return node

    def visit_expr(expr):
        if _tweakable(expr) and picker.take():
            return perturb(expr)
        return expr

    def visit_stmt(stmt):
        if _tweakable(stmt) and picker.take():
            return perturb(stmt)
        return stmt

    return _map_program(spec, visit_expr, visit_stmt)


def _splice(
    spec: ProgramSpec, rng: random.Random, donor: ProgramSpec
) -> Optional[ProgramSpec]:
    """Transplant a top-level donor statement into the entry body."""
    donor_stmts = [
        s for s in donor.entry_func.body if not isinstance(s, ReturnS)
    ]
    if not donor_stmts:
        return None
    graft = rng.choice(donor_stmts)
    entry = spec.entry_func
    body = list(entry.body)
    # Keep the trailing return last; insert anywhere before it.
    limit = len(body) - 1 if body and isinstance(body[-1], ReturnS) else len(body)
    body.insert(rng.randint(0, max(limit, 0)), graft)
    functions = spec.functions[:-1] + (
        dataclasses.replace(entry, body=tuple(body)),
    )
    return dataclasses.replace(spec, functions=functions)


def _entry_scope(spec: ProgramSpec) -> _Scope:
    """The names visible at the end of the entry body (top level only)."""
    entry = spec.entry_func
    scalars = [(p.name, p.type_name) for p in entry.params if not p.pointer]
    arrays = [
        (p.name, p.type_name, p.size, True)
        for p in entry.params
        if p.pointer
    ]
    arrays += [
        (g.name, g.elem_type, g.size, not g.const) for g in spec.globals
    ]
    for stmt in entry.body:
        if isinstance(stmt, DeclS):
            scalars.append((stmt.name, stmt.type_name))
        elif isinstance(stmt, ArrayDeclS):
            arrays.append((stmt.name, stmt.elem_type, stmt.size, True))
    return _Scope(scalars=scalars, counters=[], arrays=arrays)


def _used_prefix_max(spec: ProgramSpec, prefix: str) -> int:
    pattern = re.compile(rf"\b{prefix}(\d+)\b")
    highest = -1
    for match in pattern.finditer(render_program(spec)):
        highest = max(highest, int(match.group(1)))
    return highest


def _grow(
    spec: ProgramSpec, rng: random.Random, config: FuzzConfig
) -> Optional[ProgramSpec]:
    """Graft fresh generated statements before the entry's final return."""
    gen = _FuncGen(
        rng, config, list(spec.functions[:-1]) if config.allow_calls else []
    )
    for prefix in ("v", "a", "i"):
        gen._next[prefix] = _used_prefix_max(spec, prefix) + 1
    scope = _entry_scope(spec)
    grafts = [
        gen.stmt(scope, config.max_block_depth, False)
        for _ in range(rng.randint(1, 3))
    ]
    entry = spec.entry_func
    body = list(entry.body)
    limit = len(body) - 1 if body and isinstance(body[-1], ReturnS) else len(body)
    for graft in grafts:
        body.insert(limit, graft)
        limit += 1
    functions = spec.functions[:-1] + (
        dataclasses.replace(entry, body=tuple(body)),
    )
    return dataclasses.replace(spec, functions=functions)


def _sanitize_spec(spec: ProgramSpec) -> Optional[ProgramSpec]:
    """Restore the generator's memory-safety invariants after a mutation.

    Splice can transplant an access whose mask was sized for the *donor's*
    array into a recipient whose same-named array is smaller, and a call
    whose array argument is smaller than the recipient callee's declared
    parameter size — both out-of-bounds at runtime, which the oracles
    would misreport as repair disagreements.  Masking an in-bounds index
    with ``size - 1`` is the identity (sizes are powers of two), so every
    access mask is reset to the smallest declared size for its name;
    candidates with unresolvable names or undersized call arguments are
    rejected (``None``).
    """
    callees = {func.name: func for func in spec.functions}
    ok = [True]
    functions = []
    for func in spec.functions:
        sizes: dict = {}

        def record(name: str, size: int) -> None:
            sizes[name] = min(size, sizes.get(name, size))

        for glob in spec.globals:
            record(glob.name, glob.size)
        for param in func.params:
            if param.pointer:
                record(param.name, param.size)

        def collect_stmt(stmt):
            if type(stmt) is ArrayDeclS:
                record(stmt.name, stmt.size)
            return stmt

        for stmt in func.body:
            _map_stmt(stmt, lambda e: e, collect_stmt)

        def fix_expr(expr):
            kind = type(expr)
            if kind is LoadE:
                size = sizes.get(expr.array, 0)
                if size < 2:
                    ok[0] = False
                    return expr
                return dataclasses.replace(expr, mask=size - 1)
            if kind is CallE:
                callee = callees.get(expr.callee)
                if callee is None:
                    ok[0] = False
                    return expr
                pointer_params = [p for p in callee.params if p.pointer]
                names = [a for a in expr.args if isinstance(a, str)]
                if len(names) != len(pointer_params):
                    ok[0] = False
                    return expr
                for param, name in zip(pointer_params, names):
                    if sizes.get(name, 0) < param.size:
                        ok[0] = False
            return expr

        def fix_stmt(stmt):
            if type(stmt) is StoreS:
                size = sizes.get(stmt.array, 0)
                if size < 2:
                    ok[0] = False
                    return stmt
                return dataclasses.replace(stmt, mask=size - 1)
            return stmt

        body = tuple(_map_stmt(s, fix_expr, fix_stmt) for s in func.body)
        functions.append(dataclasses.replace(func, body=body))
    if not ok[0]:
        return None
    return dataclasses.replace(spec, functions=tuple(functions))


def mutate_spec(
    parent: ProgramSpec,
    seed: int,
    config: Optional[FuzzConfig] = None,
    donor: Optional[ProgramSpec] = None,
) -> ProgramSpec:
    """One valid MiniC mutation of ``parent`` — pure in ``(parent, seed)``.

    Candidates that fail to compile are retried with fresh perturbations;
    after :func:`mutate_retries` failures the result is a fresh seeded
    program, so the campaign's sample count never stalls on a hard-to-
    mutate parent.
    """
    from repro.fuzz.oracles import SampleInvalid, compile_sample

    config = config or FuzzConfig()
    rng = random.Random(seed ^ 0xA11CE)
    for _ in range(mutate_retries()):
        roll = rng.random()
        if donor is not None and roll < 0.30:
            candidate = _splice(parent, rng, donor)
        elif roll < 0.65:
            candidate = _tweak(parent, rng)
        else:
            candidate = _grow(parent, rng, config)
        if candidate is not None:
            candidate = _sanitize_spec(candidate)
        if candidate is None or candidate == parent:
            continue
        try:
            compile_sample(render_program(candidate), name="mutant")
        except SampleInvalid:
            if OBS.enabled:
                OBS.counter("fuzz.mutate.invalid")
            continue
        return candidate
    if OBS.enabled:
        OBS.counter("fuzz.mutate.fallbacks")
    return generate_program(seed ^ 0xF4E5, config)


# -- IR module mutation ------------------------------------------------------

_IR_INT = re.compile(r"(?<![\w.])-?\d+(?![\w.])")


def _ir_tweak_const(text: str, rng: random.Random) -> Optional[str]:
    """Replace one standalone integer literal in the printed module."""
    matches = list(_IR_INT.finditer(text))
    if not matches:
        return None
    match = rng.choice(matches)
    # Replacements stay inside [0, IR_ARRAY_CELLS): a literal can be a
    # load/store index, and an out-of-bounds *original* would make the
    # strict-memory semantic oracle report a false disagreement.
    from repro.fuzz.generators import IR_ARRAY_CELLS

    value = rng.randrange(0, IR_ARRAY_CELLS)
    return text[: match.start()] + str(value) + text[match.end():]


def _ir_swap_br(module, rng: random.Random) -> bool:
    from repro.ir.instructions import Br

    branches = [
        (block, block.terminator)
        for function in module.functions.values()
        for block in function.blocks.values()
        if isinstance(block.terminator, Br)
    ]
    if not branches:
        return False
    block, term = rng.choice(branches)
    block.terminator = dataclasses.replace(
        term, if_true=term.if_false, if_false=term.if_true
    )
    return True


def _ir_swap_binop(module, rng: random.Random) -> bool:
    from repro.ir.instructions import BinExpr, Mov

    slots = [
        (block, index)
        for function in module.functions.values()
        for block in function.blocks.values()
        for index, instr in enumerate(block.instructions)
        if isinstance(instr, Mov) and isinstance(instr.expr, BinExpr)
    ]
    if not slots:
        return False
    block, index = rng.choice(slots)
    instr = block.instructions[index]
    expr = dataclasses.replace(instr.expr, op=rng.choice(_BINOP_SWAPS))
    block.instructions[index] = dataclasses.replace(instr, expr=expr)
    return True


def mutate_ir(parent, seed: int):
    """One valid IR mutation of ``parent`` — pure in ``(module text, seed)``.

    Works on a parse round-trip copy, so the parent is never touched.
    Candidates with validator errors are retried; the fallback is a fresh
    seeded IR module.
    """
    from repro.ir import module_to_str, parse_module
    from repro.ir.validate import diagnose_module

    text = module_to_str(parent)
    rng = random.Random(seed ^ 0x1C0DE)
    for _ in range(mutate_retries()):
        candidate = None
        roll = rng.random()
        if roll < 0.45:
            mutated_text = _ir_tweak_const(text, rng)
            if mutated_text is None:
                continue
            try:
                candidate = parse_module(mutated_text)
            except Exception:
                continue
        else:
            candidate = parse_module(text)
            applied = (
                _ir_swap_br(candidate, rng)
                if roll < 0.75
                else _ir_swap_binop(candidate, rng)
            )
            if not applied:
                continue
        try:
            errors = [
                d for d in diagnose_module(candidate) if d.severity == "error"
            ]
        except Exception:
            continue
        if errors or module_to_str(candidate) == text:
            if OBS.enabled:
                OBS.counter("fuzz.mutate.invalid")
            continue
        return candidate
    if OBS.enabled:
        OBS.counter("fuzz.mutate.fallbacks")
    return random_ir_module(seed ^ 0x51F7)
