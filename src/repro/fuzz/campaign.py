"""Coverage-guided, checkpointable fuzz campaigns (``lif fuzz --cov``).

The blind driver in :mod:`repro.fuzz.engine` maps ``(seed, iterations)``
to a fixed sample sequence.  This module keeps that reproducibility while
closing the coverage feedback loop, with one structural idea: a campaign
proceeds in fixed-size **rounds** (``REPRO_FUZZ_ROUND`` samples each), and
the round boundary is the only place campaign state may change.

* Task derivation for a round — fresh sample or mutation of which corpus
  parent — is decided up front from each sample's own seeded rng and the
  corpus *as of the round start*.
* Samples inside a round are embarrassingly parallel; results are merged
  strictly in sample-index order at the barrier, updating the
  :class:`~repro.fuzz.coverage.CoverageMap` and admitting coverage-novel
  samples to the corpus.

Because neither ``--jobs`` (parallelism inside a slice) nor ``--shards``
(how a round is cut into checkpointable slices) participates in
derivation or merge order, a ``(seed, iterations)`` campaign is
byte-for-byte reproducible across any jobs/shards combination — including
after a kill + ``--resume``.

Corpus entries are derivation **recipes** (``fresh(seed)`` or
``mutate(parent_id, seed)`` chains), not program text: every mutator is a
pure function of ``(parent, seed)``, so a recipe re-materializes the same
genotype in any process.  That keeps checkpoints small and lets workers
receive the whole recipe table instead of pickled IR.  Rendered sources
are content-addressed through :class:`repro.artifacts.store.BlobStore`
(``sha256(source)`` is both the corpus id and the dedup key).

Checkpoints live under ``--checkpoint DIR``::

    campaign.json               identity (seed/iterations/config hash)
    blobs/<aa>/<sha>.blob       every distinct rendered sample
    slices/slice-RRRRR-SS.json  per-slice results, written atomically

``--resume`` validates the identity, replays completed slices through the
same merge logic (no re-execution), and re-runs only the missing ones.
"""

from __future__ import annotations

import dataclasses
import gc
import hashlib
import json
import os
import random
import shutil
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.fuzz.coverage import CoverageMap
from repro.fuzz.engine import (
    _SEED_STRIDE,
    FuzzFailure,
    run_one,
    sample_kind,
)
from repro.fuzz.generators import FuzzConfig, generate_program, random_ir_module
from repro.fuzz.mutate import mutate_ir, mutate_spec
from repro.fuzz.oracles import ORACLES
from repro.fuzz.spec import render_program
from repro.obs import OBS

#: Samples per round — the determinism barrier (env-tunable).
ROUND_ENV_VAR = "REPRO_FUZZ_ROUND"
DEFAULT_ROUND_SIZE = 64

#: Maximum corpus entries kept eligible as mutation parents.
CORPUS_MAX_ENV_VAR = "REPRO_FUZZ_CORPUS_MAX"
DEFAULT_CORPUS_MAX = 1024

#: Probability that a sample mutates a corpus parent (vs fresh), once the
#: corpus has parents of its kind.  Balanced on purpose: mutants reach
#: shapes the generator's size caps forbid (deep nesting, heavy repair
#: work), while the fresh half keeps the blind generator's shape
#: diversity — all-mutation campaigns lose breadth faster than they gain
#: depth on this coverage map.
_MUTATE_RATE = 0.5
#: Of the mutation picks, how often a MiniC mutation also gets a donor.
_DONOR_RATE = 0.35
#: Parents are drawn from the top of the novelty ranking.
_PARENT_POOL = 16

_CHECKPOINT_VERSION = 1


def round_size_from_env() -> int:
    raw = os.environ.get(ROUND_ENV_VAR, "").strip()
    try:
        value = int(raw) if raw else DEFAULT_ROUND_SIZE
    except ValueError:
        return DEFAULT_ROUND_SIZE
    return max(1, value)


def corpus_max_from_env() -> int:
    raw = os.environ.get(CORPUS_MAX_ENV_VAR, "").strip()
    try:
        value = int(raw) if raw else DEFAULT_CORPUS_MAX
    except ValueError:
        return DEFAULT_CORPUS_MAX
    return max(1, value)


class CampaignAborted(RuntimeError):
    """Raised by the test-only abort hook after N checkpoint slices."""


@dataclass(frozen=True)
class CampaignOptions:
    """Everything that determines a campaign's byte-identical output.

    ``jobs``, ``shards`` and ``checkpoint_dir`` deliberately do *not*
    appear in :meth:`identity` — they change how the work is scheduled,
    never what it computes.
    """

    seed: int = 0
    iterations: int = 200
    mutate: bool = True
    minimize: bool = True
    fuzz: FuzzConfig = field(default_factory=FuzzConfig)
    round_size: Optional[int] = None
    corpus_max: Optional[int] = None
    shards: int = 1
    jobs: Optional[int] = None
    checkpoint_dir: Optional[str] = None
    max_minimize_checks: int = 1500

    def resolved_round(self) -> int:
        return self.round_size or round_size_from_env()

    def resolved_corpus_max(self) -> int:
        return self.corpus_max or corpus_max_from_env()

    def identity(self) -> dict:
        """The checkpoint-compatibility record (plus ``shards``, which
        fixes the slice layout on disk)."""
        return {
            "version": _CHECKPOINT_VERSION,
            "seed": self.seed,
            "iterations": self.iterations,
            "mutate": self.mutate,
            "minimize": self.minimize,
            "fuzz": self.fuzz.as_dict(),
            "round_size": self.resolved_round(),
            "corpus_max": self.resolved_corpus_max(),
            "shards": max(1, self.shards),
            "max_minimize_checks": self.max_minimize_checks,
        }


@dataclass
class CampaignReport:
    """Deterministic summary of one coverage-guided campaign."""

    seed: int
    iterations: int
    mutate: bool
    minic_samples: int = 0
    ir_samples: int = 0
    invalid_samples: int = 0
    mutated_samples: int = 0
    counters: dict = field(default_factory=dict)
    failures: list = field(default_factory=list)  # [FuzzFailure]
    coverage: CoverageMap = field(default_factory=CoverageMap)
    corpus_entries: int = 0
    unique_sources: int = 0
    dedup_hits: int = 0
    rounds: list = field(default_factory=list)
    corpus_paths: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def coverage_keys(self) -> int:
        return len(self.coverage)

    def as_dict(self) -> dict:
        """JSON-stable form; identical for resumed and uninterrupted runs
        regardless of jobs/shards (the byte-identity tests compare this)."""
        return {
            "seed": self.seed,
            "iterations": self.iterations,
            "mutate": self.mutate,
            "samples": {
                "minic": self.minic_samples,
                "ir": self.ir_samples,
                "invalid": self.invalid_samples,
                "mutated": self.mutated_samples,
            },
            "oracles": {
                name: dict(self.counters.get(name, {"checked": 0, "failed": 0}))
                for name in ORACLES
            },
            "failures": [
                {
                    "case_id": f.case_id,
                    "kind": f.kind,
                    "seed": f.seed,
                    "failed": list(f.failed),
                    "source": f.source,
                }
                for f in self.failures
            ],
            "coverage": {
                "keys": len(self.coverage),
                "first_seen": self.coverage.as_dict()["first_seen"],
            },
            "corpus": {
                "entries": self.corpus_entries,
                "unique_sources": self.unique_sources,
                "dedup_hits": self.dedup_hits,
            },
            "rounds": list(self.rounds),
        }

    def summary_lines(self) -> list:
        mode = "coverage-guided" if self.mutate else "blind+coverage"
        lines = [
            f"fuzz campaign seed={self.seed} iterations={self.iterations} "
            f"mode={mode} (minic={self.minic_samples}, ir={self.ir_samples}, "
            f"invalid={self.invalid_samples}, mutated={self.mutated_samples})"
        ]
        for name in ORACLES:
            entry = self.counters.get(name, {"checked": 0, "failed": 0})
            lines.append(
                f"oracle {name:14s} checked={entry['checked']} "
                f"failed={entry['failed']}"
            )
        lines.append(
            f"coverage keys={len(self.coverage)} "
            f"corpus={self.corpus_entries} "
            f"unique_sources={self.unique_sources} "
            f"dedup_hits={self.dedup_hits}"
        )
        for entry in self.rounds:
            lines.append(
                f"  round {entry['round']:3d} samples={entry['samples']} "
                f"new_keys={entry['new_keys']} total={entry['coverage']} "
                f"corpus={entry['corpus']}"
            )
        lines.append(f"failures: {len(self.failures)}")
        for failure in self.failures:
            lines.append(
                f"  {failure.case_id} kind={failure.kind} "
                f"seed={failure.seed} oracles={','.join(failure.failed)}"
            )
        for path in self.corpus_paths:
            lines.append(f"  wrote {path}")
        return lines


# -- recipes -----------------------------------------------------------------


def _materialize(recipe: dict, recipes: dict, config: FuzzConfig, memo: dict):
    """Re-derive the genotype a recipe describes (pure, memoized by id)."""
    op = recipe["op"]
    if op == "fresh":
        if recipe["kind"] == "ir":
            return random_ir_module(recipe["seed"])
        return generate_program(recipe["seed"], config)
    parent = _materialize_id(recipe["parent"], recipes, config, memo)
    if recipe["kind"] == "ir":
        return mutate_ir(parent, recipe["seed"])
    donor = None
    if recipe.get("donor"):
        donor = _materialize_id(recipe["donor"], recipes, config, memo)
    return mutate_spec(parent, recipe["seed"], config, donor=donor)


def _materialize_id(corpus_id: str, recipes: dict, config: FuzzConfig,
                    memo: dict):
    if corpus_id in memo:
        return memo[corpus_id]
    genotype = _materialize(recipes[corpus_id], recipes, config, memo)
    memo[corpus_id] = genotype
    return genotype


def _source_of(genotype, kind: str) -> str:
    if kind == "ir":
        from repro.ir import module_to_str

        return module_to_str(genotype)
    return render_program(genotype)


def source_id(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


# -- per-task execution (runs in workers) ------------------------------------


def _run_task(task: dict, recipes: dict, config: FuzzConfig, minimize: bool,
              max_checks: int, memo: dict) -> dict:
    genotype = _materialize(task["recipe"], recipes, config, memo)
    kwargs = {"module": genotype} if task["kind"] == "ir" else {"spec": genotype}
    result = run_one(
        task["seed"], task["kind"], config,
        minimize=minimize, max_minimize_checks=max_checks,
        coverage=True, **kwargs,
    )
    result["index"] = task["index"]
    # The genotype's own rendering — the corpus/dedup identity.  On a
    # minimized failure ``result["source"]`` is the *shrunk* program.
    result["original_source"] = _source_of(genotype, task["kind"])
    result["mutated"] = task["recipe"]["op"] == "mutate"
    return result


def _campaign_worker(tasks: list, recipes: dict, config_record: dict,
                     minimize: bool, max_checks: int) -> tuple:
    OBS.reset()
    config = FuzzConfig.from_dict(config_record)
    memo: dict = {}
    results = [
        _run_task(task, recipes, config, minimize, max_checks, memo)
        for task in tasks
    ]
    return results, OBS.snapshot()


def _run_slice(tasks: list, recipes: dict, options: CampaignOptions,
               jobs: int) -> list:
    if jobs <= 1 or len(tasks) <= 1:
        memo: dict = {}
        return [
            _run_task(task, recipes, options.fuzz, options.minimize,
                      options.max_minimize_checks, memo)
            for task in tasks
        ]
    gc.collect()  # fork-lean, as in artifacts.parallel
    jobs = min(jobs, len(tasks))
    batches = [tasks[i::jobs] for i in range(jobs)]
    ordered: dict = {}
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [
            pool.submit(_campaign_worker, batch, recipes,
                        options.fuzz.as_dict(), options.minimize,
                        options.max_minimize_checks)
            for batch in batches if batch
        ]
        for future in futures:
            worker_results, snapshot = future.result()
            OBS.merge(snapshot)
            for entry in worker_results:
                ordered[entry["index"]] = entry
    return [ordered[task["index"]] for task in tasks]


# -- campaign state ----------------------------------------------------------


class _CampaignState:
    """Everything the round barrier updates, in merge (index) order."""

    def __init__(self, options: CampaignOptions) -> None:
        self.options = options
        self.cover = CoverageMap()
        self.corpus: list = []      # parent pool: {id, kind, new_keys, order}
        self.recipes: dict = {}     # full history: id -> recipe
        self.seen: set = set()      # every source id ever merged
        self.dedup_hits = 0
        self.report = CampaignReport(
            seed=options.seed,
            iterations=options.iterations,
            mutate=options.mutate,
        )
        for name in ORACLES:
            self.report.counters[name] = {"checked": 0, "failed": 0}
        self._order = 0

    def derive_tasks(self, indices: range) -> list:
        options = self.options
        tasks = []
        for index in indices:
            case_seed = options.seed * _SEED_STRIDE + index
            kind = sample_kind(index, options.fuzz)
            recipe = {"op": "fresh", "kind": kind, "seed": case_seed}
            if options.mutate:
                rng = random.Random(case_seed ^ 0xC0FFEE)
                pool = [e for e in self.corpus if e["kind"] == kind]
                if pool and rng.random() < _MUTATE_RATE:
                    ranked = sorted(
                        pool, key=lambda e: (-e["new_keys"], e["order"])
                    )[:_PARENT_POOL]
                    parent = ranked[rng.randrange(len(ranked))]
                    recipe = {
                        "op": "mutate", "kind": kind, "seed": case_seed,
                        "parent": parent["id"],
                    }
                    if kind == "minic" and len(pool) > 1 \
                            and rng.random() < _DONOR_RATE:
                        donor = pool[rng.randrange(len(pool))]
                        if donor["id"] != parent["id"]:
                            recipe["donor"] = donor["id"]
            tasks.append({
                "index": index, "seed": case_seed, "kind": kind,
                "recipe": recipe,
            })
        return tasks

    def merge(self, task: dict, result: dict, blobs) -> int:
        """Fold one sample in (must be called in index order)."""
        report = self.report
        if result["kind"] == "ir":
            report.ir_samples += 1
        else:
            report.minic_samples += 1
        if result.get("mutated"):
            report.mutated_samples += 1

        source = result.get("original_source") or result.get("source", "")
        sid = source_id(source)
        novel_source = sid not in self.seen
        if novel_source:
            self.seen.add(sid)
            if blobs is not None:
                blobs.put(source.encode("utf-8"))
        else:
            self.dedup_hits += 1

        new_keys = self.cover.observe(
            result.get("coverage", ()), result["index"]
        )

        if "invalid" in result:
            report.invalid_samples += 1
            return len(new_keys)

        if novel_source and new_keys:
            self.corpus.append({
                "id": sid,
                "kind": result["kind"],
                "new_keys": len(new_keys),
                "order": self._order,
            })
            self.recipes[sid] = task["recipe"]
            self._order += 1
            cap = self.options.resolved_corpus_max()
            if len(self.corpus) > cap:
                keep = sorted(
                    self.corpus, key=lambda e: (-e["new_keys"], e["order"])
                )[:cap]
                self.corpus = sorted(keep, key=lambda e: e["order"])

        for name in result["checked"]:
            report.counters[name]["checked"] += 1
        for name in result["failed"]:
            report.counters[name]["failed"] += 1
        if result["failed"]:
            report.failures.append(FuzzFailure(
                seed=result["seed"],
                kind=result["kind"],
                case_id=result["case_id"],
                entry=result["entry"],
                source=result["source"],
                inputs=result["inputs"],
                secret_inputs=result.get("secret_inputs"),
                failed=tuple(result["failed"]),
                report=result.get("report_dict"),
                minimize_checks=result.get("minimize_checks", 0),
            ))
        return len(new_keys)


# -- checkpoints -------------------------------------------------------------


class _Checkpoint:
    """The on-disk campaign journal (identity + blob store + slices)."""

    def __init__(self, root, options: CampaignOptions) -> None:
        self.root = Path(root)
        self.options = options
        self.slices = self.root / "slices"
        from repro.artifacts.store import BlobStore

        self.blobs = BlobStore(self.root / "blobs")

    def _identity_path(self) -> Path:
        return self.root / "campaign.json"

    def prepare(self, resume: bool) -> None:
        identity = self.options.identity()
        path = self._identity_path()
        if path.is_file():
            existing = json.loads(path.read_text())
            if existing != identity:
                raise ValueError(
                    f"checkpoint at {self.root} belongs to a different "
                    "campaign (seed/iterations/config/shards differ); "
                    "pick a fresh --checkpoint directory"
                )
            if not resume:
                # Fresh start requested over an old journal: drop slices.
                shutil.rmtree(self.slices, ignore_errors=True)
        self.root.mkdir(parents=True, exist_ok=True)
        self.slices.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(identity, indent=1, sort_keys=True) + "\n")

    def _slice_path(self, round_index: int, shard: int) -> Path:
        return self.slices / f"slice-{round_index:05d}-{shard:02d}.json"

    def load_slice(self, round_index: int, shard: int) -> Optional[list]:
        path = self._slice_path(round_index, shard)
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if record.get("round") != round_index or record.get("shard") != shard:
            return None
        return record["results"]

    def save_slice(self, round_index: int, shard: int, results: list) -> None:
        path = self._slice_path(round_index, shard)
        record = {"round": round_index, "shard": shard, "results": results}
        fd, staging = tempfile.mkstemp(dir=self.slices, prefix=".slice-")
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(record, handle, sort_keys=True)
            handle.write("\n")
        os.replace(staging, path)
        if OBS.enabled:
            OBS.event(
                "fuzz.checkpoint", round=round_index, shard=shard,
                samples=len(results), path=str(path),
            )
            OBS.counter("fuzz.campaign.checkpoints")


# -- the driver --------------------------------------------------------------


def _partition(tasks: list, shards: int) -> list:
    """Cut a round's tasks into ``shards`` contiguous slices."""
    shards = max(1, shards)
    size = (len(tasks) + shards - 1) // shards
    return [tasks[i * size:(i + 1) * size] for i in range(shards)]


def run_campaign(
    options: Optional[CampaignOptions] = None,
    resume: bool = False,
    store: bool = False,
    corpus_dir=None,
    abort_after_slices: Optional[int] = None,
    **overrides,
) -> CampaignReport:
    """Run (or resume) one coverage-guided campaign.

    ``abort_after_slices`` is the deterministic kill switch the
    checkpoint/resume tests use: the run raises :class:`CampaignAborted`
    after writing that many slice checkpoints, exactly as if the process
    had died at a slice boundary.
    """
    from repro.artifacts.parallel import resolve_jobs

    if options is None:
        options = CampaignOptions(**overrides)
    elif overrides:
        options = dataclasses.replace(options, **overrides)
    jobs = resolve_jobs(options.jobs)
    shards = max(1, options.shards)
    round_size = options.resolved_round()

    checkpoint = None
    if options.checkpoint_dir:
        checkpoint = _Checkpoint(options.checkpoint_dir, options)
        checkpoint.prepare(resume)

    state = _CampaignState(options)
    blobs = checkpoint.blobs if checkpoint else None
    slices_written = 0

    total_rounds = (options.iterations + round_size - 1) // round_size
    for round_index in range(total_rounds):
        start = round_index * round_size
        stop = min(start + round_size, options.iterations)
        tasks = state.derive_tasks(range(start, stop))
        round_new_keys = 0
        for shard, slice_tasks in enumerate(_partition(tasks, shards)):
            if not slice_tasks:
                continue
            results = (
                checkpoint.load_slice(round_index, shard)
                if checkpoint else None
            )
            if results is None:
                results = _run_slice(slice_tasks, state.recipes, options, jobs)
                if checkpoint:
                    checkpoint.save_slice(round_index, shard, results)
                    slices_written += 1
            for task, result in zip(slice_tasks, results):
                round_new_keys += state.merge(task, result, blobs)
            if (abort_after_slices is not None
                    and slices_written >= abort_after_slices):
                raise CampaignAborted(
                    f"aborted after {slices_written} checkpoint slice(s)"
                )
        state.report.rounds.append({
            "round": round_index,
            "samples": stop - start,
            "new_keys": round_new_keys,
            "coverage": len(state.cover),
            "corpus": len(state.corpus),
            "failures": len(state.report.failures),
        })

    report = state.report
    report.coverage = state.cover
    report.corpus_entries = len(state.corpus)
    report.unique_sources = len(state.seen)
    report.dedup_hits = state.dedup_hits

    if OBS.enabled:
        OBS.counter("fuzz.campaign.samples", options.iterations)
        OBS.counter("fuzz.campaign.rounds", total_rounds)
        OBS.counter("fuzz.cov.keys", len(state.cover))
        OBS.counter("fuzz.corpus.entries", len(state.corpus))
        OBS.counter("fuzz.corpus.unique_sources", len(state.seen))
        OBS.counter("fuzz.corpus.dedup_hits", state.dedup_hits)
        OBS.counter("fuzz.campaign.failures", len(report.failures))

    if store and report.failures:
        from repro.fuzz.corpus import DEFAULT_CORPUS_DIR, store_case

        directory = corpus_dir or DEFAULT_CORPUS_DIR
        for failure in report.failures:
            report.corpus_paths.extend(
                str(p) for p in store_case(failure.as_corpus_case(), directory)
            )
    return report
