"""Deterministic delta-debugging over :class:`~repro.fuzz.spec.ProgramSpec`.

Given a failing spec and a predicate ("does this spec still exhibit the
target failure?"), :func:`minimize_spec` greedily applies the first
size-reducing transformation that keeps the predicate true, restarting the
(fixed-order) enumeration from the smaller spec, until no reduction
applies or the check budget runs out.  No randomness is involved: the same
spec and predicate always shrink to the same result, which is what lets
the minimizer tests assert an exact minimal program and lets two fuzz
campaigns produce byte-identical corpora.

Candidate reductions, in the order tried (most aggressive first):

1. drop a global / drop a helper function / drop an entry parameter;
2. drop a statement; inline an ``if`` arm; unroll a ``for`` to a single
   counter-substituted body copy or shrink its bound;
3. collapse an expression to ``0``, ``1``, or one of its operands.

Validity is delegated to the predicate: a candidate that breaks scoping
or typing fails to compile, the predicate returns False (the engine maps
:class:`~repro.fuzz.oracles.SampleInvalid` to False), and the candidate is
simply rejected — the classic delta-debugging trick that keeps the
reducer itself free of language knowledge.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator

from repro.fuzz.spec import (
    ArrayDeclS,
    AssignS,
    BinE,
    CallE,
    CastE,
    ConstE,
    DeclS,
    ExprStmtS,
    ForS,
    FuncSpec,
    IfS,
    LoadE,
    ProgramSpec,
    ReturnS,
    StoreS,
    TernE,
    UnE,
    VarE,
)

DEFAULT_MAX_CHECKS = 3000


def minimize_spec(
    spec: ProgramSpec,
    predicate: Callable[[ProgramSpec], bool],
    max_checks: int = DEFAULT_MAX_CHECKS,
) -> tuple:
    """Shrink ``spec`` while ``predicate`` stays true.

    Returns ``(minimal_spec, checks_used)``.  ``predicate(spec)`` must be
    true on entry (the caller established the failure); the result is
    1-minimal with respect to the reduction set whenever the budget was
    not exhausted.
    """
    checks = 0
    improved = True
    while improved and checks < max_checks:
        improved = False
        for candidate in _spec_reductions(spec):
            checks += 1
            if predicate(candidate):
                spec = candidate
                improved = True
                break
            if checks >= max_checks:
                break
    return spec, checks


# -- reduction enumeration ---------------------------------------------------


def _spec_reductions(spec: ProgramSpec) -> Iterator[ProgramSpec]:
    # Drop a global.
    for index in range(len(spec.globals)):
        yield dataclasses.replace(
            spec, globals=spec.globals[:index] + spec.globals[index + 1:]
        )
    # Drop a helper (never the entry, which is last).
    for index in range(len(spec.functions) - 1):
        yield dataclasses.replace(
            spec,
            functions=spec.functions[:index] + spec.functions[index + 1:],
        )
    # Drop an entry parameter.
    entry = spec.entry_func
    for index in range(len(entry.params)):
        slimmed = dataclasses.replace(
            entry, params=entry.params[:index] + entry.params[index + 1:]
        )
        yield dataclasses.replace(
            spec, functions=spec.functions[:-1] + (slimmed,)
        )
    # Shrink one function body.
    for index, func in enumerate(spec.functions):
        for body in _body_reductions(func.body, top_level=True):
            shrunk = dataclasses.replace(func, body=body)
            yield dataclasses.replace(
                spec,
                functions=(
                    spec.functions[:index] + (shrunk,)
                    + spec.functions[index + 1:]
                ),
            )


def _body_reductions(body: tuple, top_level: bool) -> Iterator[tuple]:
    for index, stmt in enumerate(body):
        keep_tail = top_level and index == len(body) - 1 and isinstance(
            stmt, ReturnS
        )
        if not keep_tail:
            yield body[:index] + body[index + 1:]
        if isinstance(stmt, IfS):
            yield body[:index] + stmt.then_body + body[index + 1:]
            yield body[:index] + stmt.else_body + body[index + 1:]
        if isinstance(stmt, ForS):
            once = _substitute_body(stmt.body, stmt.var, ConstE(0))
            yield body[:index] + once + body[index + 1:]
            if stmt.bound > 1:
                yield (body[:index]
                       + (dataclasses.replace(stmt, bound=1),)
                       + body[index + 1:])
        for replacement in _stmt_reductions(stmt):
            yield body[:index] + (replacement,) + body[index + 1:]


def _stmt_reductions(stmt) -> Iterator:
    if isinstance(stmt, DeclS):
        for expr in _expr_reductions(stmt.init):
            yield dataclasses.replace(stmt, init=expr)
    elif isinstance(stmt, AssignS):
        for expr in _expr_reductions(stmt.value):
            yield dataclasses.replace(stmt, value=expr)
    elif isinstance(stmt, StoreS):
        for expr in _expr_reductions(stmt.value):
            yield dataclasses.replace(stmt, value=expr)
        for expr in _expr_reductions(stmt.index):
            yield dataclasses.replace(stmt, index=expr)
    elif isinstance(stmt, ReturnS):
        for expr in _expr_reductions(stmt.value):
            yield dataclasses.replace(stmt, value=expr)
    elif isinstance(stmt, ExprStmtS):
        for expr in _expr_reductions(stmt.expr):
            yield dataclasses.replace(stmt, expr=expr)
    elif isinstance(stmt, ArrayDeclS):
        if stmt.inits:
            yield dataclasses.replace(stmt, inits=())
    elif isinstance(stmt, IfS):
        for expr in _expr_reductions(stmt.cond):
            yield dataclasses.replace(stmt, cond=expr)
        for then_body in _body_reductions(stmt.then_body, top_level=False):
            yield dataclasses.replace(stmt, then_body=then_body)
        for else_body in _body_reductions(stmt.else_body, top_level=False):
            yield dataclasses.replace(stmt, else_body=else_body)
    elif isinstance(stmt, ForS):
        for inner in _body_reductions(stmt.body, top_level=False):
            yield dataclasses.replace(stmt, body=inner)


def _expr_reductions(expr) -> Iterator:
    """One-step shrinks of ``expr``, smallest replacements first."""
    if not isinstance(expr, ConstE) or expr.value not in (0, 1):
        yield ConstE(0)
        yield ConstE(1)
    if isinstance(expr, BinE):
        yield expr.lhs
        yield expr.rhs
        for lhs in _expr_reductions(expr.lhs):
            yield dataclasses.replace(expr, lhs=lhs)
        for rhs in _expr_reductions(expr.rhs):
            yield dataclasses.replace(expr, rhs=rhs)
    elif isinstance(expr, UnE):
        yield expr.operand
        for operand in _expr_reductions(expr.operand):
            yield dataclasses.replace(expr, operand=operand)
    elif isinstance(expr, TernE):
        yield expr.if_true
        yield expr.if_false
        for cond in _expr_reductions(expr.cond):
            yield dataclasses.replace(expr, cond=cond)
        for if_true in _expr_reductions(expr.if_true):
            yield dataclasses.replace(expr, if_true=if_true)
        for if_false in _expr_reductions(expr.if_false):
            yield dataclasses.replace(expr, if_false=if_false)
    elif isinstance(expr, CastE):
        yield expr.operand
        for operand in _expr_reductions(expr.operand):
            yield dataclasses.replace(expr, operand=operand)
    elif isinstance(expr, LoadE):
        for index in _expr_reductions(expr.index):
            yield dataclasses.replace(expr, index=index)
    elif isinstance(expr, CallE):
        for position, arg in enumerate(expr.args):
            if isinstance(arg, str):
                continue
            yield arg
            for reduced in _expr_reductions(arg):
                yield dataclasses.replace(
                    expr,
                    args=(expr.args[:position] + (reduced,)
                          + expr.args[position + 1:]),
                )


# -- counter substitution ----------------------------------------------------


def _substitute_body(body: tuple, var: str, value) -> tuple:
    return tuple(_substitute_stmt(stmt, var, value) for stmt in body)


def _substitute_stmt(stmt, var: str, value):
    sub = lambda e: _substitute_expr(e, var, value)  # noqa: E731
    if isinstance(stmt, DeclS):
        return dataclasses.replace(stmt, init=sub(stmt.init))
    if isinstance(stmt, AssignS):
        return dataclasses.replace(stmt, value=sub(stmt.value))
    if isinstance(stmt, StoreS):
        return dataclasses.replace(
            stmt, index=sub(stmt.index), value=sub(stmt.value)
        )
    if isinstance(stmt, ReturnS):
        return dataclasses.replace(stmt, value=sub(stmt.value))
    if isinstance(stmt, ExprStmtS):
        return dataclasses.replace(stmt, expr=sub(stmt.expr))
    if isinstance(stmt, IfS):
        return IfS(
            sub(stmt.cond),
            _substitute_body(stmt.then_body, var, value),
            _substitute_body(stmt.else_body, var, value),
        )
    if isinstance(stmt, ForS):
        if stmt.var == var:  # shadowed; cannot happen with fresh names
            return stmt
        return dataclasses.replace(
            stmt, body=_substitute_body(stmt.body, var, value)
        )
    return stmt


def _substitute_expr(expr, var: str, value):
    if isinstance(expr, VarE):
        return value if expr.name == var else expr
    if isinstance(expr, BinE):
        return BinE(expr.op, _substitute_expr(expr.lhs, var, value),
                    _substitute_expr(expr.rhs, var, value))
    if isinstance(expr, UnE):
        return UnE(expr.op, _substitute_expr(expr.operand, var, value))
    if isinstance(expr, TernE):
        return TernE(
            _substitute_expr(expr.cond, var, value),
            _substitute_expr(expr.if_true, var, value),
            _substitute_expr(expr.if_false, var, value),
        )
    if isinstance(expr, CastE):
        return CastE(expr.type_name,
                     _substitute_expr(expr.operand, var, value))
    if isinstance(expr, LoadE):
        return dataclasses.replace(
            expr, index=_substitute_expr(expr.index, var, value)
        )
    if isinstance(expr, CallE):
        return CallE(expr.callee, tuple(
            arg if isinstance(arg, str)
            else _substitute_expr(arg, var, value)
            for arg in expr.args
        ))
    return expr
