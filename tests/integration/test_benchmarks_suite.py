"""The benchmark suite itself: registry coherence, reference vectors, and
a fast covenant sweep over the cheap benchmarks (the heavyweight sweep is
``benchmarks/bench_validation_covenant.py``)."""

import pytest

from repro.bench.suite import BENCHMARKS, get_benchmark, load_module
from repro.exec import Interpreter
from repro.verify import check_covenant

FAST_BENCHMARKS = (
    "ofdf", "ofdt", "otdf", "otdt", "tea", "xtea", "raiden", "speck",
    "simon", "rc5", "des", "loki91", "cast5", "khazad",
)


class TestRegistry:
    def test_twenty_four_benchmarks(self):
        assert len(BENCHMARKS) == 24

    def test_names_unique(self):
        names = [b.name for b in BENCHMARKS]
        assert len(set(names)) == len(names)

    def test_categories_match_paper_composition(self):
        by_category = {}
        for bench in BENCHMARKS:
            by_category.setdefault(bench.category, []).append(bench.name)
        assert len(by_category["ctbench"]) == 3  # the paper's CTBench trio
        assert len(by_category["synthetic"]) == 4  # Fig. 1 quartet

    def test_expected_sce_failures(self):
        errors = [b.name for b in BENCHMARKS if b.sce_expected == "error"]
        incorrect = [b.name for b in BENCHMARKS
                     if b.sce_expected == "incorrect"]
        assert sorted(errors) == [
            "ctbench_memcmp", "ctbench_modexp", "ctbench_select",
        ]
        assert sorted(incorrect) == ["loki91", "ofdf"]

    def test_inherent_inconsistency_flags_are_exclusive(self):
        for bench in BENCHMARKS:
            assert bench.data_invariant != bench.inherently_inconsistent, (
                f"{bench.name}: a benchmark is either repairable to data "
                "invariance or inherently inconsistent"
            )

    def test_inputs_are_deterministic(self):
        bench = get_benchmark("tea")
        assert bench.make_inputs(3) == bench.make_inputs(3)
        assert bench.make_inputs(3, seed=1) != bench.make_inputs(3, seed=2)

    def test_inputs_match_arg_specs(self):
        for bench in BENCHMARKS:
            for args in bench.make_inputs(2):
                assert len(args) == len(bench.args)

    @pytest.mark.parametrize("name", [b.name for b in BENCHMARKS])
    def test_every_benchmark_compiles_and_runs(self, name):
        bench = get_benchmark(name)
        module = load_module(name)
        interp = Interpreter(module, record_trace=False)
        result = interp.run(bench.entry, bench.make_inputs(1)[0])
        assert isinstance(result.value, int)


class TestReferenceVectors:
    def test_aes_fips197(self):
        module = load_module("aes")
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        round_keys = _aes_expand(list(key))
        block = [int.from_bytes(plaintext[4 * i: 4 * i + 4], "big")
                 for i in range(4)]
        result = Interpreter(module, record_trace=False).run(
            "aes128_encrypt", [block, round_keys]
        )
        ciphertext = b"".join(v.to_bytes(4, "big") for v in result.arrays[0])
        assert ciphertext.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_tea_reference(self):
        module = load_module("tea")
        v, k = [0x0123_4567, 0x89AB_CDEF], [0xA, 0xB, 0xC, 0xD]
        result = Interpreter(module, record_trace=False).run(
            "tea_encrypt", [list(v), list(k)]
        )
        assert result.arrays[0] == _tea_reference(v, k)

    def test_xtea_reference(self):
        module = load_module("xtea")
        v, k = [0xDEAD_BEEF, 0x0BAD_F00D], [1, 2, 3, 4]
        result = Interpreter(module, record_trace=False).run(
            "xtea_encrypt", [list(v), list(k)]
        )
        assert result.arrays[0] == _xtea_reference(v, k)

    def test_speck_reference(self):
        module = load_module("speck")
        block = [0x3B72_6574, 0x7475_432D]
        keys = [(i * 0x9E3779B9) & 0xFFFFFFFF for i in range(27)]
        result = Interpreter(module, record_trace=False).run(
            "speck_encrypt", [list(block), list(keys)]
        )
        assert result.arrays[0] == _speck_reference(block, keys)


class TestFastCovenantSweep:
    @pytest.mark.parametrize("name", FAST_BENCHMARKS)
    def test_covenant_holds(self, name):
        bench = get_benchmark(name)
        module = load_module(name)
        report = check_covenant(module, bench.entry, bench.make_inputs(2))
        assert report.semantics_preserved, name
        assert report.operation_invariant, name
        assert report.memory_safe, name
        if bench.data_invariant:
            assert report.data_invariant, name


# -- pure-python references ----------------------------------------------------

_M32 = 0xFFFFFFFF


def _tea_reference(v, k):
    v0, v1 = v
    total = 0
    delta = 0x9E3779B9
    for _ in range(32):
        total = (total + delta) & _M32
        v0 = (v0 + ((((v1 << 4) & _M32) + k[0]) ^ (v1 + total)
                    ^ ((v1 >> 5) + k[1]))) & _M32
        v1 = (v1 + ((((v0 << 4) & _M32) + k[2]) ^ (v0 + total)
                    ^ ((v0 >> 5) + k[3]))) & _M32
    return [v0, v1]


def _xtea_reference(v, k):
    v0, v1 = v
    total = 0
    delta = 0x9E3779B9
    for _ in range(32):
        v0 = (v0 + ((((v1 << 4) ^ (v1 >> 5)) + v1)
                    ^ ((total + k[total & 3]) & _M32))) & _M32
        total = (total + delta) & _M32
        v1 = (v1 + ((((v0 << 4) ^ (v0 >> 5)) + v0)
                    ^ ((total + k[(total >> 11) & 3]) & _M32))) & _M32
    return [v0, v1]


def _speck_reference(block, keys):
    x, y = block
    for key in keys:
        x = ((x >> 8) | (x << 24)) & _M32
        x = ((x + y) & _M32) ^ key
        y = (((y << 3) | (y >> 29)) & _M32) ^ x
    return [x, y]


def _aes_expand(key):
    sbox_src = load_module("aes").globals["aes_sbox"].initial_contents()
    rcon = [1, 2, 4, 8, 16, 32, 64, 128, 27, 54]
    words = [list(key[4 * i: 4 * i + 4]) for i in range(4)]
    for i in range(4, 44):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]
            temp = [sbox_src[b] for b in temp]
            temp[0] ^= rcon[i // 4 - 1]
        words.append([a ^ b for a, b in zip(words[i - 4], temp)])
    return [int.from_bytes(bytes(w), "big") for w in words]
