"""End-to-end reproductions of the paper's worked examples."""

import pytest

from repro import compile_minic
from repro.analysis import compute_path_conditions
from repro.baseline import sc_eliminate
from repro.core import RepairOptions, repair_module
from repro.exec import Interpreter
from repro.ir import parse_module
from repro.verify import adapt_inputs, check_covenant, check_invariance

from tests.conftest import FIG1_MINIC, OFDF_IR


class TestFigure1:
    """The four invariance combinations, measured dynamically."""

    @pytest.fixture(scope="class")
    def module(self):
        return compile_minic(FIG1_MINIC, name="fig1")

    def run_pair(self, module, name, args_a, args_b):
        interp = Interpreter(module)
        return interp.run(name, args_a).trace, interp.run(name, args_b).trace

    def test_ofdf_neither_invariant(self, module):
        a, b = self.run_pair(module, "ofdf",
                             [[1, 2], [1, 2]], [[9, 2], [1, 2]])
        assert a.operation_signature() != b.operation_signature()
        assert a.data_signature() != b.data_signature()

    def test_ofdt_data_invariant_only(self, module):
        a, b = self.run_pair(module, "ofdt",
                             [[1, 2], [1, 2]], [[9, 2], [1, 2]])
        assert a.operation_signature() != b.operation_signature()
        assert a.data_signature() == b.data_signature()

    def test_otdf_operation_invariant_only(self, module):
        a, b = self.run_pair(module, "otdf",
                             [[5, 6], [5, 6], [0, 1]],
                             [[5, 6], [5, 6], [1, 0]])
        assert a.operation_signature() == b.operation_signature()
        assert a.data_signature() != b.data_signature()

    def test_otdt_fully_invariant(self, module):
        a, b = self.run_pair(module, "otdt",
                             [[1, 2], [1, 2]], [[9, 8], [7, 6]])
        assert a.operation_signature() == b.operation_signature()
        assert a.data_signature() == b.data_signature()


class TestExample2And3:
    """The impossibility result and SC-Eliminator's unsafety."""

    def test_example2_no_transformation_can_be_all_three(self):
        # oFdF with a = {0}, b = {1}: the original returns without touching
        # cell 1, so a *data-invariant* equivalent would have to touch it —
        # out of bounds.  Our repair chooses safety: it accesses the shadow
        # instead, so data invariance is (by design) lost outside the
        # contract while semantics and safety hold.
        module = parse_module(OFDF_IR)
        repaired = repair_module(module)
        interp = Interpreter(repaired)
        short = interp.run("ofdf", [[0], 1, [1], 1])
        assert short.value == 0
        assert not short.violations
        shadow_touches = [
            a for a in short.trace.memory if "sh" in a.region
        ]
        assert shadow_touches, "zombie accesses must fall back to the shadow"

    def test_example3_sceliminator_is_unsafe_on_the_same_input(self):
        module = parse_module(OFDF_IR)
        transformed = sc_eliminate(module)
        interp = Interpreter(transformed, strict_memory=False)
        result = interp.run("ofdf", [[0], [1]])
        assert result.violations, (
            "Wu et al.'s transformation must exhibit the paper's "
            "out-of-bounds accesses at a[1]/b[1]"
        )


class TestFigure2NewOfdf:
    """The contract-carrying new_oFdF of the paper's Fig. 2, hand-written in
    MiniC, behaves like the automatically repaired version."""

    SOURCE = """
    uint new_ofdf(secret uint *a, secret uint *b, uint na, uint nb) {
      uint bound = (na < nb) ? na : nb;
      uint limit = (2 < bound) ? 2 : bound;
      uint r = 1;
      for (uint i = 0; i < 2; i = i + 1) {
        uint in_range = i < limit;
        uint ai = in_range ? a[in_range ? i : 0] : 0;
        uint bi = in_range ? b[in_range ? i : 0] : 0;
        uint same = ai == bi;
        r = (in_range && (same == 0)) ? 0 : r;
      }
      return r;
    }
    """

    def test_agrees_with_plain_comparison_within_bounds(self):
        module = compile_minic(self.SOURCE)
        interp = Interpreter(module)
        assert interp.run("new_ofdf", [[1, 2], [1, 2], 2, 2]).value == 1
        assert interp.run("new_ofdf", [[1, 2], [1, 3], 2, 2]).value == 0

    def test_operation_invariant_by_construction(self):
        module = compile_minic(self.SOURCE)
        report = check_invariance(
            module, "new_ofdf",
            [[[1, 2], [1, 2], 2, 2], [[9, 9], [1, 2], 2, 2]],
        )
        assert report.operation_invariant


class TestFigure18AugmentedFoo:
    """The paper's Appendix example: the augmented function assigns x under
    `Z | (i < N_v)`, but the extra definition never escapes."""

    SOURCE = """
    func @foo0(v: ptr, i: int, z: int) {
    entry:
      br z, read, done
    read:
      x1 = load v[i]
      jmp done
    done:
      r = phi [x1, read], [0, entry]
      ret r
    }
    """

    def test_zombie_read_does_not_change_result(self):
        module = parse_module(self.SOURCE)
        repaired = repair_module(module)
        interp = Interpreter(repaired)
        # z = 0: the original never reads; the repaired version performs a
        # zombie read (i < n keeps it on the real array) but returns 0.
        result = interp.run("foo0", [[42, 43], 2, 1, 0])
        assert result.value == 0
        reads = [a for a in result.trace.memory if a.kind == "load"]
        assert reads, "operation invariance forces the read to happen"
        # z = 1: the real read goes through.
        assert interp.run("foo0", [[42, 43], 2, 1, 1]).value == 43


class TestFigure5Conditions:
    def test_incoming_and_outgoing_conditions(self, ofdf_module):
        conditions = compute_path_conditions(ofdf_module.function("ofdf"))
        assert str(conditions.outgoing["l1"]) == "!p0"
        assert str(conditions.outgoing["l3"]) == "!p0 & !p1"


class TestInterproceduralFigure10:
    SOURCE = """
    uint callee(secret uint *buf, uint i) {
      buf[i] = buf[i] + 1;
      return buf[i];
    }
    uint caller(secret uint *buf, secret uint flag) {
      if (flag == 7) {
        callee(buf, 0);
      }
      return buf[0];
    }
    """

    def test_condition_threading_suppresses_callee_effects(self):
        module = compile_minic(self.SOURCE)
        repaired = repair_module(module)
        interp = Interpreter(repaired)
        taken = interp.run("caller", [[10], 1, 7])
        skipped = interp.run("caller", [[10], 1, 0])
        assert taken.value == 11
        assert skipped.value == 10, "callee ran as a zombie: no state change"
        assert (taken.trace.operation_signature()
                == skipped.trace.operation_signature())

    def test_covenant_holds_across_calls(self):
        module = compile_minic(self.SOURCE)
        report = check_covenant(
            module, "caller", [[[10], 7], [[10], 0], [[3], 5]]
        )
        assert report.semantics_preserved
        assert report.operation_invariant
        assert report.memory_safe
