"""Differential testing of the compiled backend against the interpreter.

Every bundled benchmark program — original, repaired, and repaired at -O1 —
runs under both execution backends on the same inputs; the backends must
agree on every observable: return value, simulated cycles, dynamic step
count, access violations, array outputs, and global state.  With tracing
enabled, the full instruction and memory traces must also match.

This is the acceptance gate for ``repro.exec.compiled``: the interpreter is
the reference semantics, and any divergence here is a compiler bug.
"""

from functools import lru_cache

import pytest

from repro.bench.suite import BENCHMARKS, get_benchmark, load_module
from repro.core import repair_module
from repro.exec import make_executor
from repro.opt import optimize
from repro.verify import adapt_inputs

ALL_NAMES = [b.name for b in BENCHMARKS]


@lru_cache(maxsize=None)
def _variants(name):
    """(module, inputs) per variant; inputs adapted to contract signatures."""
    bench = get_benchmark(name)
    original = load_module(name)
    repaired = repair_module(original)
    repaired_o1 = optimize(repaired)
    inputs = bench.make_inputs(2)
    contract_inputs = adapt_inputs(original, bench.entry, inputs)
    return bench.entry, (
        ("original", original, inputs),
        ("repaired", repaired, contract_inputs),
        ("repaired_o1", repaired_o1, contract_inputs),
    )


def _copy(arg):
    return list(arg) if isinstance(arg, list) else arg


def _observation(result):
    """Everything a backend must agree on, with violations as strings so
    dataclass identity does not matter."""
    return (
        result.value,
        result.cycles,
        result.steps,
        [str(v) for v in result.violations],
        result.arrays,
        result.global_state,
    )


class TestNoTraceEquivalence:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_all_variants_agree(self, name):
        entry, variants = _variants(name)
        for label, module, inputs in variants:
            interp = make_executor(
                module, backend="interp", record_trace=False,
                strict_memory=False,
            )
            compiled = make_executor(
                module, backend="compiled", record_trace=False,
                strict_memory=False,
            )
            for args in inputs:
                ref = interp.run(entry, [_copy(a) for a in args])
                got = compiled.run(entry, [_copy(a) for a in args])
                assert _observation(got) == _observation(ref), (
                    f"{name}/{label}: backends diverge on {args!r}"
                )


class TestTraceEquivalence:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_traces_agree(self, name):
        entry, variants = _variants(name)
        for label, module, inputs in variants:
            interp = make_executor(
                module, backend="interp", strict_memory=False,
            )
            compiled = make_executor(
                module, backend="compiled", strict_memory=False,
            )
            args = inputs[0]
            ref = interp.run(entry, [_copy(a) for a in args])
            got = compiled.run(entry, [_copy(a) for a in args])
            assert _observation(got) == _observation(ref), f"{name}/{label}"
            assert ref.trace is not None and got.trace is not None
            assert got.trace.operation_signature() == (
                ref.trace.operation_signature()
            ), f"{name}/{label}: instruction traces diverge"
            assert got.trace.data_signature() == ref.trace.data_signature(), (
                f"{name}/{label}: memory traces diverge"
            )
            assert got.trace.memory == ref.trace.memory, (
                f"{name}/{label}: memory access records diverge"
            )


class TestCacheModeEquivalence:
    """Cache-hierarchy simulation must see the same address streams."""

    @pytest.mark.parametrize("name", ["tea", "ctbench_memcmp", "ofdf"])
    def test_cache_reports_agree(self, name):
        from repro.cache import CacheHierarchy

        entry, variants = _variants(name)
        for label, module, inputs in variants:
            signatures = {}
            for backend in ("interp", "compiled"):
                hierarchy = CacheHierarchy()
                executor = make_executor(
                    module, backend=backend, record_trace=False,
                    strict_memory=False, cache=hierarchy,
                )
                result = executor.run(entry, [_copy(a) for a in inputs[0]])
                signatures[backend] = (
                    result.cycles, hierarchy.report().signature()
                )
            assert signatures["interp"] == signatures["compiled"], (
                f"{name}/{label}: cache behaviour diverges"
            )
