"""Chaos tests: deterministic fault injection under contention.

Each test runs a contended burst with ``REPRO_SERVE_FAULTS`` set for one
(or several) fault modes and asserts the system converges — every job
completes exactly once, byte-identical to the direct pipeline — and the
``serve.fault.*`` bookkeeping matches the injected plan *exactly*.
"""

import threading

import pytest

from repro.serve import JobSpec, canonical_result_bytes, execute_job
from repro.serve.client import ServeClient
from repro.serve.faults import FaultPlan, FaultPlanError
from repro.serve.jobs import clear_warm_modules
from repro.serve.server import ServeConfig, ServerThread

GATE = """
uint gate(secret uint s, uint p) {
  uint y = 0;
  if (s > p) {
    y = 3;
  } else {
    y = 8;
  }
  return y;
}
"""


def _variant(index):
    return JobSpec(
        kind="repair", source=GATE + f"// chaos {index}\n", name=f"x{index}"
    )


@pytest.fixture()
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    clear_warm_modules()
    yield tmp_path
    clear_warm_modules()


def _faulty_server(monkeypatch, faults, **overrides):
    monkeypatch.setenv("REPRO_SERVE_FAULTS", faults)
    defaults = dict(port=0, workers=0)
    defaults.update(overrides)
    return ServerThread(ServeConfig.from_env(**defaults))


class TestPlanParsing:
    def test_parse_and_shape(self):
        plan = FaultPlan.parse("crash@2,slow@4:0.1,drop@1,drop@5")
        assert plan.planned() == {"crash": 1, "slow": 1, "drop": 2}
        assert bool(plan)

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan.parse("")
        assert not FaultPlan.parse(None)

    def test_malformed_directives_raise(self):
        for bad in ("explode@1", "crash", "crash@zero", "crash@0",
                    "slow@1:fast"):
            with pytest.raises(FaultPlanError):
                FaultPlan.parse(bad)

    def test_take_consumes_once(self):
        plan = FaultPlan.parse("crash@2")
        assert plan.take("crash", 1) is None
        assert plan.take("crash", 2) == ("crash", None)
        assert plan.take("crash", 2) is None  # consumed: retry runs clean
        assert plan.fired == {"crash": 1}


class TestSingleModes:
    def test_crash_fault_is_retried_to_completion(self, isolated_cache,
                                                  monkeypatch):
        with _faulty_server(monkeypatch, "crash@1") as srv:
            client = ServeClient(srv.host, srv.port)
            accepted = client.submit(_variant(0))
            view = client.wait(accepted["job_id"], timeout=120)
            assert view["status"] == "done"
            blob = client.result_bytes(accepted["job_id"])
            assert blob == canonical_result_bytes(execute_job(_variant(0)))
            stats = client.stats()
            assert stats["faults"]["fired"] == {"crash": 1}
            assert stats["faults"]["pending"] == 0
            assert stats["counters"]["serve.retries"] == 1
            assert stats["counters"]["serve.completed"] == 1

    def test_crash_exhausting_retries_fails_the_job(self, isolated_cache,
                                                    monkeypatch):
        # Three crashes against max_retries=2: attempts 1..3 all die.
        plan = "crash@1,crash@2,crash@3"
        with _faulty_server(monkeypatch, plan) as srv:
            client = ServeClient(srv.host, srv.port)
            accepted = client.submit(_variant(1))
            view = client.wait(accepted["job_id"], timeout=120)
            assert view["status"] == "failed"
            assert "WorkerCrashed" in view["error"]
            stats = client.stats()
            assert stats["faults"]["fired"] == {"crash": 3}
            assert stats["counters"]["serve.transport_failures"] == 1

    def test_slow_fault_delays_but_completes(self, isolated_cache,
                                             monkeypatch):
        with _faulty_server(monkeypatch, "slow@1:0.05") as srv:
            client = ServeClient(srv.host, srv.port)
            accepted = client.submit(_variant(2))
            assert client.wait(accepted["job_id"],
                               timeout=120)["status"] == "done"
            stats = client.stats()
            assert stats["faults"]["fired"] == {"slow": 1}
            assert stats["counters"].get("serve.retries", 0) == 0

    def test_dropped_response_converges_idempotently(self, isolated_cache,
                                                     monkeypatch):
        with _faulty_server(monkeypatch, "drop@1") as srv:
            client = ServeClient(srv.host, srv.port)
            # The first response is severed after acceptance; the client
            # re-posts and coalesces onto the in-flight job by key.
            accepted = client.submit_retrying(_variant(3), attempts=10)
            job_id = accepted["job_id"]
            if not accepted.get("cached"):
                assert client.wait(job_id, timeout=120)["status"] == "done"
                blob = client.result_bytes(job_id)
                assert blob == canonical_result_bytes(
                    execute_job(_variant(3))
                )
            stats = client.stats()
            assert stats["faults"]["fired"] == {"drop": 1}
            assert stats["counters"]["serve.dropped_responses"] == 1
            # Exactly one execution: no duplicated work from the retry.
            assert stats["counters"]["serve.completed"] == 1


class TestContendedBurst:
    def test_mixed_plan_under_contention_matches_exactly(self,
                                                         isolated_cache,
                                                         monkeypatch):
        plan = "crash@2,slow@3:0.05,drop@1,drop@4"
        burst = 8
        with _faulty_server(monkeypatch, plan) as srv:
            client = ServeClient(srv.host, srv.port)
            results: dict = {}
            errors: list = []

            def submit(i):
                try:
                    worker = ServeClient(srv.host, srv.port)
                    accepted = worker.submit_retrying(_variant(100 + i),
                                                      attempts=50)
                    job_id = accepted["job_id"]
                    if accepted.get("cached"):
                        results[i] = canonical_result_bytes(
                            accepted["result"]
                        )
                        return
                    view = worker.wait(job_id, timeout=180)
                    assert view["status"] == "done", view
                    results[i] = worker.result_bytes(job_id)
                except BaseException as exc:  # surfaced below
                    errors.append((i, exc))

            threads = [
                threading.Thread(target=submit, args=(i,))
                for i in range(burst)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300)
            assert not errors, errors
            assert len(results) == burst
            for i in range(burst):
                direct = canonical_result_bytes(
                    execute_job(_variant(100 + i))
                )
                assert results[i] == direct, f"job {i} diverged"
            stats = client.stats()
            # The fired ledger matches the plan exactly — every planned
            # fault fired, nothing fired twice.
            assert stats["faults"]["fired"] == {
                "crash": 1, "slow": 1, "drop": 2,
            }
            assert stats["faults"]["pending"] == 0
            counters = stats["counters"]
            assert counters["serve.dropped_responses"] == 2
            assert counters["serve.retries"] == 1
            # No lost or duplicated completions: distinct jobs complete
            # exactly once each.
            assert counters["serve.completed"] == burst


class TestProcessPoolCrash:
    def test_worker_process_death_rebuilds_pool_and_retries(
            self, isolated_cache, monkeypatch):
        with _faulty_server(monkeypatch, "crash@1", workers=1) as srv:
            client = ServeClient(srv.host, srv.port)
            accepted = client.submit(_variant(200))
            view = client.wait(accepted["job_id"], timeout=300)
            assert view["status"] == "done"
            blob = client.result_bytes(accepted["job_id"])
            assert blob == canonical_result_bytes(
                execute_job(_variant(200))
            )
            stats = client.stats()
            assert stats["faults"]["fired"] == {"crash": 1}
            assert stats["counters"]["serve.retries"] >= 1
            assert stats["counters"]["serve.pool.rebuilds"] >= 1
            assert stats["pool"]["rebuilds"] >= 1
