"""Every shipped example must run clean end to end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} should narrate what it does"
