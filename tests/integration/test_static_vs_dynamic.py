"""The static certifier against the dynamic covenant verifier.

`CertificationReport.operation_leak_free` is designed as the static
counterpart of the dynamic covenant's operation-invariance clause; this
module holds the two to agreement across the benchmark suite — the
property `lif lint --suite` and the results book rely on.
"""

import pytest

from repro.bench.runner import get_artifacts
from repro.bench.suite import BENCHMARKS, get_benchmark
from repro.statics import certify_entry
from repro.verify import check_covenant

ALL_NAMES = [b.name for b in BENCHMARKS]

# The dynamic cross-check executes every benchmark twice; the heavyweight
# ciphers are exercised by ``benchmarks/bench_validation_covenant.py``.
FAST_BENCHMARKS = (
    "ofdf", "ofdt", "otdf", "otdt", "tea", "xtea", "raiden", "speck",
    "simon", "rc5", "des", "loki91", "cast5", "khazad",
)


class TestStaticSweep:
    """Static-only assertions over all 24 benchmarks (cached artifacts)."""

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_repaired_variant_is_operation_leak_free(self, name):
        artifacts = get_artifacts(name)
        report = certify_entry(artifacts.repaired, artifacts.built.entry)
        assert report.operation_leak_free, (
            f"{name}: repaired variant has a secret-steered branch: "
            f"{[str(d.anchor) for d in report.diagnostics()]}"
        )
        # No repaired benchmark may leak beyond what its metadata
        # whitelists as inherently data-inconsistent.
        assert report.genuine_failures == []
        bench = get_benchmark(name)
        if not bench.inherently_inconsistent:
            assert report.all_certified, (
                f"{name}: residual leak in {report.residual_functions} but "
                "the benchmark is not inherently data-inconsistent"
            )
        else:
            assert report.residual_functions, (
                f"{name}: metadata says inherently data-inconsistent but "
                "the certifier found nothing residual"
            )
            assert all(
                report.functions[fn].inherently_data_inconsistent
                for fn in report.residual_functions
            )

    def test_cached_certification_matches_recomputation(self):
        # The artifact store persists verdict dicts; they must agree with
        # an in-process run over the same IR.
        artifacts = get_artifacts("tea")
        cached = artifacts.built.certification
        if not cached:  # pre-certifier cache entry
            pytest.skip("artifact cache entry predates certification")
        fresh = certify_entry(artifacts.repaired, artifacts.built.entry)
        assert cached["repaired"] == fresh.as_dict()


class TestAgreementWithDynamicVerifier:
    @pytest.mark.parametrize("name", FAST_BENCHMARKS)
    def test_operation_invariance_verdicts_agree(self, name):
        bench = get_benchmark(name)
        artifacts = get_artifacts(name)
        static = certify_entry(artifacts.repaired, bench.entry)
        dynamic = check_covenant(
            artifacts.original,
            bench.entry,
            bench.make_inputs(2),
            repaired=artifacts.repaired,
        )
        assert static.operation_leak_free == dynamic.operation_invariant

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_cache_verdicts_agree_with_the_simulator(self, name):
        """The headline 48/48: static abstract-cache verdicts vs the
        dynamic LRU simulator, every benchmark at O0 and O1.

        Protocol: a static CERTIFIED_CACHE_INVARIANT must be confirmed by
        an invariant hit/miss signature (the certificate is *sound*); a
        static residual is only acceptable on benchmarks whose metadata
        whitelists them as inherently data-inconsistent (the certificate
        is *precise* up to the paper's S-box cases).
        """
        from repro.statics import CertificationMatrix
        from repro.verify.covenant import adapt_inputs
        from repro.verify.isochronicity import check_cache_invariance

        bench = get_benchmark(name)
        artifacts = get_artifacts(name)
        built = artifacts.built
        if not built.certification_matrix:  # pre-matrix cache entry
            pytest.skip("artifact cache entry predates the matrix")
        adapted = adapt_inputs(
            artifacts.original, built.entry, bench.make_inputs(2)
        )
        for variant, module in (
            ("repaired", artifacts.repaired),
            ("repaired_o1", artifacts.repaired_o1),
        ):
            matrix = CertificationMatrix.from_dict(
                built.certification_matrix[variant]
            )
            static = matrix.cache.functions[built.entry]
            dynamic = check_cache_invariance(module, built.entry, adapted)
            if static.certified:
                assert dynamic.cache_invariant, (
                    f"{name}/{variant}: statically certified cache-"
                    "invariant but the simulator observed differing "
                    "hit/miss signatures — the certificate is unsound"
                )
            else:
                assert bench.inherently_inconsistent, (
                    f"{name}/{variant}: residual cache verdict "
                    f"({static.secret_accesses} secret accesses, "
                    f"{static.branch_leaks} branch leaks) on a benchmark "
                    "not whitelisted as inherently data-inconsistent"
                )
                assert static.inherently_data_inconsistent

    @pytest.mark.parametrize("name", ("ofdf", "ofdt", "loki91"))
    def test_leaky_originals_are_flagged_statically(self, name):
        # Benchmarks whose originals branch on secrets: the static verdict
        # on the *original* must be operation-variant, mirroring what the
        # dynamic checker observes pre-repair.
        bench = get_benchmark(name)
        artifacts = get_artifacts(name)
        static = certify_entry(artifacts.original, bench.entry)
        assert not static.operation_leak_free
        assert bench.entry in static.genuine_failures
