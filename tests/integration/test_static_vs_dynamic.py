"""The static certifier against the dynamic covenant verifier.

`CertificationReport.operation_leak_free` is designed as the static
counterpart of the dynamic covenant's operation-invariance clause; this
module holds the two to agreement across the benchmark suite — the
property `lif lint --suite` and the results book rely on.
"""

import pytest

from repro.bench.runner import get_artifacts
from repro.bench.suite import BENCHMARKS, get_benchmark
from repro.statics import certify_entry
from repro.verify import check_covenant

ALL_NAMES = [b.name for b in BENCHMARKS]

# The dynamic cross-check executes every benchmark twice; the heavyweight
# ciphers are exercised by ``benchmarks/bench_validation_covenant.py``.
FAST_BENCHMARKS = (
    "ofdf", "ofdt", "otdf", "otdt", "tea", "xtea", "raiden", "speck",
    "simon", "rc5", "des", "loki91", "cast5", "khazad",
)


class TestStaticSweep:
    """Static-only assertions over all 24 benchmarks (cached artifacts)."""

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_repaired_variant_is_operation_leak_free(self, name):
        artifacts = get_artifacts(name)
        report = certify_entry(artifacts.repaired, artifacts.built.entry)
        assert report.operation_leak_free, (
            f"{name}: repaired variant has a secret-steered branch: "
            f"{[str(d.anchor) for d in report.diagnostics()]}"
        )
        # No repaired benchmark may leak beyond what its metadata
        # whitelists as inherently data-inconsistent.
        assert report.genuine_failures == []
        bench = get_benchmark(name)
        if not bench.inherently_inconsistent:
            assert report.all_certified, (
                f"{name}: residual leak in {report.residual_functions} but "
                "the benchmark is not inherently data-inconsistent"
            )
        else:
            assert report.residual_functions, (
                f"{name}: metadata says inherently data-inconsistent but "
                "the certifier found nothing residual"
            )
            assert all(
                report.functions[fn].inherently_data_inconsistent
                for fn in report.residual_functions
            )

    def test_cached_certification_matches_recomputation(self):
        # The artifact store persists verdict dicts; they must agree with
        # an in-process run over the same IR.
        artifacts = get_artifacts("tea")
        cached = artifacts.built.certification
        if not cached:  # pre-certifier cache entry
            pytest.skip("artifact cache entry predates certification")
        fresh = certify_entry(artifacts.repaired, artifacts.built.entry)
        assert cached["repaired"] == fresh.as_dict()


class TestAgreementWithDynamicVerifier:
    @pytest.mark.parametrize("name", FAST_BENCHMARKS)
    def test_operation_invariance_verdicts_agree(self, name):
        bench = get_benchmark(name)
        artifacts = get_artifacts(name)
        static = certify_entry(artifacts.repaired, bench.entry)
        dynamic = check_covenant(
            artifacts.original,
            bench.entry,
            bench.make_inputs(2),
            repaired=artifacts.repaired,
        )
        assert static.operation_leak_free == dynamic.operation_invariant

    @pytest.mark.parametrize("name", ("ofdf", "ofdt", "loki91"))
    def test_leaky_originals_are_flagged_statically(self, name):
        # Benchmarks whose originals branch on secrets: the static verdict
        # on the *original* must be operation-variant, mirroring what the
        # dynamic checker observes pre-repair.
        bench = get_benchmark(name)
        artifacts = get_artifacts(name)
        static = certify_entry(artifacts.original, bench.entry)
        assert not static.operation_leak_free
        assert bench.entry in static.genuine_failures
