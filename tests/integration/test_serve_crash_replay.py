"""Crash-replay integration tests: SIGKILL a shard, restart, replay.

Real ``lif serve`` subprocesses with the journal enabled.  A killed
server must replay every accepted-but-incomplete job under its original
job id and re-serve byte-identical results; a kill *during* a journal
append must leave a torn tail that recovery detects and truncates.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve import JobSpec, canonical_result_bytes, execute_job
from repro.serve.client import TRANSIENT_ERRORS, ServeClient
from repro.serve.faults import TORN_EXIT_CODE
from repro.serve.jobs import clear_warm_modules

REPO_ROOT = Path(__file__).resolve().parents[2]

GATE = """
uint gate(secret uint s, uint p) {
  uint y = 0;
  if (s > p) {
    y = 3;
  } else {
    y = 8;
  }
  return y;
}
"""


def _variant(index):
    return JobSpec(
        kind="repair", source=GATE + f"// crash {index}\n", name=f"c{index}"
    )


@pytest.fixture()
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    clear_warm_modules()
    yield tmp_path
    clear_warm_modules()


def _spawn(tmp_path, journal, faults=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["PYTHONUNBUFFERED"] = "1"
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    if faults:
        env["REPRO_SERVE_FAULTS"] = faults
    else:
        env.pop("REPRO_SERVE_FAULTS", None)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--workers", "0",
         "--port", "0", "--journal", str(journal)],
        env=env, cwd=tmp_path, stderr=subprocess.PIPE, text=True,
    )
    deadline = time.monotonic() + 60
    while True:
        line = process.stderr.readline()
        if "listening on http://" in line:
            port = int(line.split("http://")[1].split()[0].rsplit(":", 1)[1])
            return process, port
        if not line and process.poll() is not None:
            raise RuntimeError(
                f"server died before announcing: {process.returncode}"
            )
        if time.monotonic() > deadline:
            process.kill()
            raise TimeoutError("server did not announce")


def _await_done(client, job_id, timeout=120):
    view = client.wait(job_id, timeout=timeout)
    assert view["status"] == "done", view
    return client.result_bytes(job_id)


def test_sigkill_mid_queue_replays_all_accepted_jobs(isolated_cache,
                                                     tmp_path):
    journal = tmp_path / "journal.jsonl"
    # slow@1:120 parks the first dispatched job in the worker, so every
    # submission behind it is accepted + journalled but incomplete.
    server, port = _spawn(tmp_path, journal, faults="slow@1:120")
    ids = []
    try:
        client = ServeClient("127.0.0.1", port)
        for i in range(3):
            accepted = client.submit(_variant(i))
            assert accepted["status"] == "queued"
            ids.append(accepted["job_id"])
        # Everything is accepted; nothing can have finished (job 1 is
        # asleep and the thread pool is single-lane behind it).
        server.send_signal(signal.SIGKILL)
        server.wait(timeout=30)
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=30)

    assert journal.exists()
    restarted, port = _spawn(tmp_path, journal)
    try:
        client = ServeClient("127.0.0.1", port)
        # Original job ids answer after the restart — replayed, not lost.
        for i, job_id in enumerate(ids):
            blob = _await_done(client, job_id)
            direct = canonical_result_bytes(execute_job(_variant(i)))
            assert blob == direct, f"job {job_id} not byte-identical"
        counters = client.stats()["counters"]
        replayed = counters.get("serve.journal.replayed_jobs", 0)
        cached = counters.get("serve.journal.replay_cache_hits", 0)
        assert replayed + cached == 3
        client.shutdown()
        restarted.wait(timeout=60)
    finally:
        if restarted.poll() is None:
            restarted.kill()
            restarted.wait(timeout=30)


def test_replay_is_idempotent_across_double_restart(isolated_cache,
                                                    tmp_path):
    journal = tmp_path / "journal.jsonl"
    server, port = _spawn(tmp_path, journal, faults="slow@1:120")
    try:
        client = ServeClient("127.0.0.1", port)
        job_id = client.submit(_variant(0))["job_id"]
        server.send_signal(signal.SIGKILL)
        server.wait(timeout=30)
    finally:
        if server.poll() is None:
            server.kill()

    # First restart completes the job; the done record lands in the
    # journal, so a second restart replays nothing.
    restarted, port = _spawn(tmp_path, journal)
    try:
        client = ServeClient("127.0.0.1", port)
        blob = _await_done(client, job_id)
        client.shutdown()
        restarted.wait(timeout=60)
    finally:
        if restarted.poll() is None:
            restarted.kill()
            restarted.wait(timeout=30)

    final, port = _spawn(tmp_path, journal)
    try:
        client = ServeClient("127.0.0.1", port)
        counters = client.stats()["counters"]
        assert counters.get("serve.journal.replayed_jobs", 0) == 0
        # The result is still served (content-addressed cache), so the
        # client that knows the key gets identical bytes via re-submit.
        again = client.submit(_variant(0))
        assert again["cached"] is True
        assert canonical_result_bytes(again["result"]) == blob
        client.shutdown()
        final.wait(timeout=60)
    finally:
        if final.poll() is None:
            final.kill()
            final.wait(timeout=30)


def test_kill_during_journal_append_truncates_torn_tail(isolated_cache,
                                                        tmp_path):
    journal = tmp_path / "journal.jsonl"
    # Append 1 = accept of job 1 (parked by slow@1).  Append 2 = accept
    # of job 2: the torn fault writes half the record, fsyncs, and kills
    # the process mid-append — the classic torn tail.
    server, port = _spawn(tmp_path, journal, faults="slow@1:120,torn@2")
    try:
        client = ServeClient("127.0.0.1", port)
        first = client.submit(_variant(0))
        assert first["status"] == "queued"
        with pytest.raises(TRANSIENT_ERRORS):
            client.submit(_variant(1))  # dies mid-append, no response
        server.wait(timeout=30)
        assert server.returncode == TORN_EXIT_CODE
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=30)

    raw = journal.read_bytes()
    assert raw and not raw.endswith(b"\n"), "expected a torn last record"

    restarted, port = _spawn(tmp_path, journal)
    try:
        client = ServeClient("127.0.0.1", port)
        # Job 1 (intact accept) replays and completes byte-identically;
        # job 2's torn accept is truncated — it was never acknowledged,
        # so nothing observable is lost.
        blob = _await_done(client, first["job_id"])
        assert blob == canonical_result_bytes(execute_job(_variant(0)))
        stats = client.stats()
        assert stats["journal"]["torn_tail"] == 1
        replay_total = (
            stats["counters"].get("serve.journal.replayed_jobs", 0)
            + stats["counters"].get("serve.journal.replay_cache_hits", 0)
        )
        assert replay_total == 1
        # The compacted journal is whole lines again.
        assert journal.read_bytes().endswith(b"\n")
        # The un-acknowledged job can simply be resubmitted.
        resubmitted = client.submit(_variant(1))
        job_id = resubmitted["job_id"]
        if not resubmitted.get("cached"):
            _await_done(client, job_id)
        client.shutdown()
        restarted.wait(timeout=60)
    finally:
        if restarted.poll() is None:
            restarted.kill()
            restarted.wait(timeout=30)
