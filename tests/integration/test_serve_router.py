"""Integration tests of the consistent-hash shard router.

Two in-process shard servers (thread-mode pools) behind an in-process
router thread: routing, byte-identity through the extra hop, shard
affinity, per-shard draining, and failover to live shards.
"""

import json

import pytest

from repro.serve import (
    JobSpec,
    canonical_result_bytes,
    execute_job,
    job_key,
)
from repro.serve.client import ServeClient
from repro.serve.jobs import clear_warm_modules
from repro.serve.router import RouterConfig, RouterThread, Shard
from repro.serve.server import ServeConfig, ServerThread

GATE = """
uint gate(secret uint s, uint p) {
  uint y = 0;
  if (s > p) {
    y = 3;
  } else {
    y = 8;
  }
  return y;
}
"""


def _variant(index):
    return JobSpec(
        kind="repair", source=GATE + f"// route {index}\n", name=f"r{index}"
    )


@pytest.fixture()
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    clear_warm_modules()
    yield tmp_path
    clear_warm_modules()


@pytest.fixture()
def fleet(isolated_cache):
    """Two thread-mode shards behind a router; yields (router, backends)."""
    backends = [
        ServerThread(ServeConfig.from_env(port=0, workers=0)).start()
        for _ in range(2)
    ]
    shards = [
        Shard(f"s{i}", backend.host, backend.port)
        for i, backend in enumerate(backends)
    ]
    router = RouterThread(RouterConfig(port=0, health_interval=0.2), shards)
    router.start()
    yield router, backends
    router.request_drain()
    router.join()
    for backend in backends:
        backend.request_drain()
        backend.join()


def test_jobs_route_complete_and_match_direct_api(fleet):
    router, _ = fleet
    client = ServeClient(router.host, router.port)
    accepted = {}
    for i in range(6):
        response = client.submit(_variant(i))
        assert response["job_id"].split(".")[0] in ("s0", "s1")
        accepted[i] = response["job_id"]
    for i, compound in accepted.items():
        view = client.wait(compound, timeout=120)
        assert view["status"] == "done"
        assert view["job_id"] == compound  # compound id echoed back
        blob = client.result_bytes(compound)
        direct = canonical_result_bytes(execute_job(_variant(i)))
        assert blob == direct


def test_identical_submissions_share_a_shard_and_coalesce(fleet):
    router, _ = fleet
    client = ServeClient(router.host, router.port)
    spec = _variant(42)
    first = client.submit(spec)
    second = client.submit(spec)
    shard_of = lambda r: r["job_id"].split(".")[0]  # noqa: E731
    assert shard_of(first) == shard_of(second)
    assert second.get("coalesced") or second.get("cached")
    client.wait(first["job_id"], timeout=120)


def test_spread_uses_both_shards(fleet):
    router, _ = fleet
    # The ring itself must spread these keys over both shards.
    owners = {
        router.router.ring.route(job_key(_variant(i))) for i in range(32)
    }
    assert owners == {"s0", "s1"}


def test_per_shard_drain_moves_intake_to_the_rest(fleet):
    router, _ = fleet
    client = ServeClient(router.host, router.port)
    drained = client._json("POST", "/v1/shards/s0/drain")
    assert drained == {"status": "draining", "shard": "s0"}
    for i in range(8):
        response = client.submit(_variant(100 + i))
        assert response["job_id"].startswith("s1."), response
    health = client.health()
    assert health["shards"]["s0"] == "draining"
    assert health["shards"]["s1"] == "ok"


def test_dead_shard_fails_over_to_live_one(fleet):
    router, backends = fleet
    # Kill shard s0 outright (drain + join = socket gone).
    backends[0].request_drain()
    backends[0].join()
    router.probe_now()
    client = ServeClient(router.host, router.port)
    for i in range(6):
        response = client.submit(_variant(200 + i))
        assert response["job_id"].startswith("s1."), response
        assert client.wait(response["job_id"], timeout=120)["status"] == "done"
    stats = client.stats()
    assert stats["live_shards"] == ["s1"]
    assert stats["shards"]["s0"]["healthy"] is False


def test_failover_counter_fires_on_forward_failure(fleet):
    router, backends = fleet
    backends[1].request_drain()
    backends[1].join()
    client = ServeClient(router.host, router.port)
    # Without a probe, the router discovers the dead shard on the first
    # forward that fails, demotes it, and retries the next preference.
    for i in range(12):
        response = client.submit(_variant(300 + i))
        assert response["job_id"].startswith("s0."), response
    counters = client.stats()["counters"]
    assert counters.get("serve.shard.failover", 0) >= 1


def test_compound_job_id_is_required_behind_the_router(fleet):
    router, _ = fleet
    client = ServeClient(router.host, router.port)
    for bogus in ("j00000001", "nope.j1", "s0"):
        status, blob = client._request("GET", f"/v1/jobs/{bogus}")
        assert status == 404, bogus
        assert json.loads(blob.decode())["error"] == "unknown_job"


def test_aggregate_stats_include_shard_views(fleet):
    router, _ = fleet
    client = ServeClient(router.host, router.port)
    done = client.submit(_variant(7))
    client.wait(done["job_id"], timeout=120)
    stats = client.stats()
    assert stats["role"] == "router"
    assert stats["shard_count"] == 2
    assert set(stats["shard_stats"]) == {"s0", "s1"}
    owner = done["job_id"].split(".")[0]
    assert stats["shard_stats"][owner]["counters"]["serve.completed"] >= 1
    assert stats["ring"]["replicas"] >= 1


def test_event_stream_pipes_through_the_router(fleet):
    router, _ = fleet
    client = ServeClient(router.host, router.port)
    accepted = client.submit(_variant(55))
    client.wait(accepted["job_id"], timeout=120)
    names = [event.get("event") for event in
             client.events(accepted["job_id"], timeout=60)]
    assert "job.queued" in names
    assert "job.done" in names
