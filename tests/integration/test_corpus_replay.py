"""Replay the committed reproducer corpus as ordinary pytest cases.

Every case under ``tests/corpus/`` is a regression seed (a minimized
reproducer for a since-fixed bug) or a hard program; the corpus policy
(``docs/FUZZING.md``) requires all of them to pass the full oracle battery
at head.  This test is what turns the corpus into a standing gate: a
reintroduced bug fails here with the exact minimized program that first
exposed it, without running a fuzz campaign.
"""

import pytest

from repro.fuzz.corpus import DEFAULT_CORPUS_DIR, load_corpus, replay_case
from repro.fuzz.oracles import ORACLES

CORPUS_DIR = DEFAULT_CORPUS_DIR
CASES = load_corpus(CORPUS_DIR)


def test_corpus_is_present():
    # The repo ships at least the four triaged regression seeds from the
    # initial campaigns (docs/FUZZING.md).
    assert len(CASES) >= 4


def test_corpus_files_are_paired():
    # Every .json has its program text and vice versa — a stray file means
    # a half-committed case.
    suffixes = {".mc", ".ir", ".json"}
    stems = {}
    for path in CORPUS_DIR.iterdir():
        assert path.suffix in suffixes, f"unexpected corpus file {path}"
        stems.setdefault(path.stem, set()).add(path.suffix)
    for stem, found in stems.items():
        assert ".json" in found and len(found) == 2, (
            f"case {stem} is missing its metadata or program file"
        )


@pytest.mark.parametrize(
    "case", CASES, ids=[case.case_id for case in CASES]
)
def test_corpus_case_passes_all_oracles(case):
    report = replay_case(case)
    assert report.ok, (
        f"{case.case_id}: oracles {report.failed} regressed "
        f"(note: {case.note or 'none'})"
    )
    # A full replay exercises the complete battery, not a subset.
    assert tuple(r.name for r in report.results) == ORACLES
