"""End-to-end tests of the serve subsystem over real sockets.

Most tests run the server in-process on a background thread with the
thread-mode pool (workers=0) so they stay fast; one test exercises the
real process pool with recycling, and one drives the installed ``lif
serve`` / ``lif submit`` CLI in subprocesses.
"""

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.serve import (
    JobSpec,
    canonical_result_bytes,
    execute_job,
    job_key,
)
from repro.serve.client import ServeClient, ServeError
from repro.serve.jobs import clear_warm_modules
from repro.serve.server import ServeConfig, ServerThread

GATE = """
uint gate(secret uint s, uint p) {
  uint y = 0;
  if (s > p) {
    y = 3;
  } else {
    y = 8;
  }
  return y;
}
"""

LOOKUP = """
uint lookup(uint *t, secret uint i) {
  return t[i];
}
"""


def _variant(index):
    return JobSpec(
        kind="repair", source=GATE + f"// variant {index}\n", name=f"v{index}"
    )


@pytest.fixture()
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    clear_warm_modules()
    yield tmp_path
    clear_warm_modules()


def _thread_server(**overrides):
    defaults = dict(port=0, workers=0)
    defaults.update(overrides)
    return ServerThread(ServeConfig.from_env(**defaults))


def test_served_results_are_byte_identical_to_direct_api(isolated_cache):
    specs = [
        JobSpec(kind="repair", source=GATE, name="gate"),
        JobSpec(kind="verify", source=GATE, name="gate", entry="gate",
                runs=3, seed=5, array_size=4),
        JobSpec(kind="certify", source=LOOKUP, name="lookup"),
        JobSpec(kind="run", source=GATE, name="gate", entry="gate",
                args=(12, 7)),
    ]
    direct = [canonical_result_bytes(execute_job(s)) for s in specs]
    with _thread_server() as srv:
        client = ServeClient(srv.host, srv.port)
        job_ids = [client.submit(s)["job_id"] for s in specs]
        for jid, expected in zip(job_ids, direct):
            assert client.wait(jid, timeout=120)["status"] == "done"
            assert client.result_bytes(jid) == expected


def test_concurrent_mix_with_duplicate_submissions(isolated_cache):
    with _thread_server() as srv:
        client = ServeClient(srv.host, srv.port)
        results = {}

        def submit_and_wait(index):
            spec = _variant(index % 4)  # 12 submissions, 4 distinct keys
            accepted = client.submit_retrying(spec)
            if accepted.get("cached"):
                results[index] = canonical_result_bytes(accepted["result"])
                return
            client.wait(accepted["job_id"], timeout=120)
            results[index] = client.result_bytes(accepted["job_id"])

        threads = [
            threading.Thread(target=submit_and_wait, args=(index,))
            for index in range(12)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        stats = client.stats()

    assert len(results) == 12
    for index, blob in results.items():
        assert blob == results[index % 4]
    counters = stats["counters"]
    # 4 distinct keys: at most 4 executions; the other 8 submissions were
    # answered by the result cache or coalesced onto an in-flight job.
    assert counters.get("serve.completed", 0) <= 4
    assert (
        counters.get("serve.cache_served", 0)
        + counters.get("serve.coalesced", 0)
        >= 8
    )


def test_duplicate_after_completion_is_a_cache_hit(isolated_cache):
    spec = JobSpec(kind="repair", source=GATE, name="gate")
    with _thread_server() as srv:
        client = ServeClient(srv.host, srv.port)
        first = client.submit(spec)
        assert first["cached"] is False
        client.wait(first["job_id"], timeout=120)
        second = client.submit(spec)
        assert second["cached"] is True
        assert second["key"] == first["key"] == job_key(spec)
        assert canonical_result_bytes(second["result"]) == \
            client.result_bytes(first["job_id"])
        shards = client.stats()["result_cache"]
        assert shards["entries"] >= 1
        assert shards["shard_width"] == 2


def test_result_cache_survives_server_restart(isolated_cache):
    spec = JobSpec(kind="repair", source=GATE, name="gate")
    with _thread_server() as srv:
        client = ServeClient(srv.host, srv.port)
        accepted = client.submit(spec)
        client.wait(accepted["job_id"], timeout=120)
        blob = client.result_bytes(accepted["job_id"])
    with _thread_server() as srv:
        client = ServeClient(srv.host, srv.port)
        again = client.submit(spec)
        assert again["cached"] is True
        assert canonical_result_bytes(again["result"]) == blob


def test_backpressure_429_with_retry_after(isolated_cache, monkeypatch):
    import repro.serve.pool as pool_mod

    release = threading.Event()
    real_job = pool_mod._thread_job

    def gated_job(payload, events_path):
        release.wait(timeout=120)
        return real_job(payload, events_path)

    monkeypatch.setattr(pool_mod, "_thread_job", gated_job)
    with _thread_server(queue_limit=2) as srv:
        client = ServeClient(srv.host, srv.port)
        first = client.submit(_variant(0))   # running (gated)
        second = client.submit(_variant(1))  # queued -> pending == 2
        with pytest.raises(ServeError) as excinfo:
            client.submit(_variant(2))
        rejected = excinfo.value
        assert rejected.status == 429
        assert rejected.payload["error"] == "backpressure"
        assert rejected.retry_after > 0
        release.set()
        # submit_retrying rides out the back-pressure and still succeeds
        final = client.submit_retrying(_variant(2), attempts=200)
        assert final.get("cached") or "job_id" in final
        for entry in (first, second):
            assert client.wait(entry["job_id"], timeout=120)["status"] == "done"


def test_per_tenant_rate_limit(isolated_cache):
    with _thread_server(tenant_rps=0.5) as srv:  # burst of 1 token
        client = ServeClient(srv.host, srv.port)
        seen = {"ok": 0, "limited": 0}
        for index in range(4):
            spec = JobSpec(kind="repair", source=GATE + f"// {index}\n",
                           name="gate", tenant="greedy")
            try:
                client.submit(spec)
                seen["ok"] += 1
            except ServeError as exc:
                assert exc.status == 429
                assert exc.payload["error"] == "rate_limited"
                seen["limited"] += 1
        assert seen["ok"] >= 1
        assert seen["limited"] >= 1
        # an unrelated tenant is not throttled by the greedy one
        other = JobSpec(kind="repair", source=GATE + "// other\n",
                        name="gate", tenant="polite")
        assert "job_id" in client.submit(other)


def test_event_stream_carries_lifecycle(isolated_cache):
    with _thread_server() as srv:
        client = ServeClient(srv.host, srv.port)
        accepted = client.submit(JobSpec(kind="repair", source=GATE,
                                         name="gate"))
        events = [e["event"] for e in client.events(accepted["job_id"],
                                                    timeout=120)]
    assert events[0] == "job.queued"
    assert "job.started" in events
    assert events[-1] == "job.done"


def test_graceful_drain_finishes_inflight_jobs(isolated_cache):
    import socket

    with _thread_server(drain_grace=60.0) as srv:
        client = ServeClient(srv.host, srv.port)
        accepted = [client.submit(_variant(i)) for i in range(5)]
        # Hold one connection open so the post-drain grace window stays
        # open deterministically while we collect results.
        holder = socket.create_connection((srv.host, srv.port))
        try:
            answer = client.shutdown()
            assert answer["status"] == "draining"
            # new submissions are refused while draining...
            with pytest.raises(ServeError) as excinfo:
                client.submit(_variant(99))
            assert excinfo.value.status == 503
            # ...but status/result endpoints keep answering, and every
            # in-flight job still completes.
            for entry in accepted:
                view = client.wait(entry["job_id"], timeout=120)
                assert view["status"] == "done"
                assert client.result_bytes(entry["job_id"])
            assert client.health()["status"] == "draining"
        finally:
            holder.close()


def test_unknown_job_and_endpoint(isolated_cache):
    with _thread_server() as srv:
        client = ServeClient(srv.host, srv.port)
        with pytest.raises(ServeError) as excinfo:
            client.status("j99999999")
        assert excinfo.value.status == 404
        with pytest.raises(ServeError) as excinfo:
            client._json("GET", "/v1/nope")
        assert excinfo.value.status == 404
        with pytest.raises(ServeError) as excinfo:
            client.submit({"kind": "banana", "source": "x"})
        assert excinfo.value.status == 400


def test_process_pool_with_recycling(isolated_cache):
    config = ServeConfig.from_env(port=0, workers=2, recycle=2)
    with ServerThread(config) as srv:
        client = ServeClient(srv.host, srv.port)
        specs = [_variant(index) for index in range(6)]
        direct = [canonical_result_bytes(execute_job(s)) for s in specs]
        accepted = [client.submit(s) for s in specs]
        for entry, expected in zip(accepted, direct):
            assert client.wait(entry["job_id"], timeout=300)["status"] == "done"
            assert client.result_bytes(entry["job_id"]) == expected
        stats = client.stats()
        assert stats["pool"]["mode"] == "process"
        assert stats["pool"]["recycle_after_jobs"] == 2
        # worker-side obs spans stream into the per-job event file
        events = [e for e in client.events(accepted[0]["job_id"],
                                           timeout=120)]
        kinds = [e["event"] for e in events]
        assert "span" in kinds


REPO_ROOT = Path(__file__).resolve().parents[2]


def test_cli_serve_and_submit_subprocess(isolated_cache, tmp_path):
    source = tmp_path / "gate.mc"
    source.write_text(GATE)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_SERVE_PORT"] = "0"
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--workers", "0",
         "--port", "0"],
        env=env, cwd=tmp_path, stderr=subprocess.PIPE, text=True,
    )
    try:
        # the announce line carries the ephemeral port
        line = server.stderr.readline()
        assert "listening on http://" in line, line
        port = int(line.split("http://")[1].split()[0].rsplit(":", 1)[1])
        submit = subprocess.run(
            [sys.executable, "-m", "repro.cli", "submit", str(source),
             "-k", "repair", "--port", str(port)],
            env=env, cwd=tmp_path, capture_output=True, text=True,
            timeout=120,
        )
        assert submit.returncode == 0, submit.stderr
        result = json.loads(submit.stdout)
        assert result["kind"] == "repair"
        assert "ctsel" in result["ir"]
        # byte-level agreement with the direct pipeline
        direct = execute_job(
            JobSpec(kind="repair", source=GATE, name="gate")
        )
        assert result == json.loads(canonical_result_bytes(direct))
        shutdown = ServeClient("127.0.0.1", port).shutdown()
        assert shutdown["status"] == "draining"
        server.wait(timeout=60)
        assert server.returncode == 0
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=30)


def test_server_start_failure_surfaces(isolated_cache):
    with _thread_server() as srv:
        conflicting = ServerThread(
            ServeConfig.from_env(port=srv.port, workers=0)
        )
        with pytest.raises(RuntimeError):
            conflicting.start()
