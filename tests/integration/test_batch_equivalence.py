"""Differential testing of the batch backend against scalar execution.

Every bundled benchmark — original, repaired, and repaired at -O1 — runs
as one lane family under the batch backend (both tiers: trace-speculative
superblocks and plain lock-step) and scalar under the compiled backend and
the interpreter.  Per-lane results must be bit-identical on every
observable: return value, simulated cycles, dynamic step count, access
violations, array outputs, global state, and the full instruction and
memory traces.

This is the acceptance gate for ``repro.exec.batch``: any per-lane
divergence from a scalar loop is a lock-step engine bug.  The guard-abort
tests additionally pin the speculation protocol itself: a lane whose
branch condition disagrees with the recorded trace must abort to the
general compiled backend, increment the ``exec.trace.abort`` counter, and
still produce the exact scalar results.
"""

import pytest

from repro.exec import BatchExecutor, make_executor, run_many
from repro.ir import parse_module
from repro.obs import OBS, configure

from tests.integration.test_backend_equivalence import (
    ALL_NAMES,
    _copy,
    _observation,
    _variants,
)


def _full_observation(result):
    return _observation(result) + (result.trace,)


def _lanes(inputs, repeats=3):
    """A lane family from the benchmark inputs: each vector several times,
    interleaved, so deduplication and chunking both see realistic shapes."""
    vectors = []
    for _ in range(repeats):
        for args in inputs:
            vectors.append([_copy(a) for a in args])
    return vectors


class TestBatchMatchesScalar:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_all_variants_agree_with_traces(self, name):
        entry, variants = _variants(name)
        for label, module, inputs in variants:
            scalar = make_executor(
                module, backend="compiled", strict_memory=False,
            )
            vectors = _lanes(inputs)
            ref = [scalar.run(entry, [_copy(a) for a in v]) for v in vectors]
            for trace_spec in (True, False):
                batch = BatchExecutor(
                    module, strict_memory=False, trace_spec=trace_spec,
                )
                got = batch.run_batch(entry, vectors)
                assert len(got) == len(ref)
                for lane, (r, g) in enumerate(zip(ref, got)):
                    assert _full_observation(g) == _full_observation(r), (
                        f"{name}/{label}: lane {lane} diverges "
                        f"(trace_spec={trace_spec})"
                    )

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_three_way_with_interpreter(self, name):
        """batch ≡ scalar-compiled ≡ interp on the no-trace observables."""
        entry, variants = _variants(name)
        for label, module, inputs in variants:
            interp = make_executor(
                module, backend="interp", record_trace=False,
                strict_memory=False,
            )
            batch = make_executor(
                module, backend="batch", record_trace=False,
                strict_memory=False,
            )
            vectors = [[_copy(a) for a in args] for args in inputs]
            ref = [interp.run(entry, [_copy(a) for a in v]) for v in vectors]
            got = run_many(batch, entry, vectors)
            for lane, (r, g) in enumerate(zip(ref, got)):
                assert _observation(g) == _observation(r), (
                    f"{name}/{label}: batch and interpreter diverge "
                    f"on lane {lane}"
                )


#: Secret-dependent branching (the paper's oFdF): lanes whose first words
#: differ take the early exit, lanes with equal first words fall through —
#: exactly the divergence shape that forces mid-trace guard failures.
GUARD_IR = """
func @ofdf(a: ptr, b: ptr) {
l0:
  x0 = load a[0]
  y0 = load b[0]
  p0 = mov x0 != y0
  br p0, l4, l1
l1:
  x1 = load a[1]
  y1 = load b[1]
  p1 = mov x1 != y1
  br p1, l4, l3
l3:
  jmp l5
l4:
  jmp l5
l5:
  r = phi [1, l3], [0, l4]
  ret r
}
"""


class TestTraceGuardAbort:
    def _vectors(self):
        # Lane 0 (the trace leader) takes the equal-equal path; the marked
        # lanes diverge at the first or second guard respectively.
        return [
            [[1, 2], [1, 2]],  # leader: both compares equal -> ret 1
            [[1, 2], [1, 2]],  # duplicate of the leader (dedup path)
            [[9, 2], [1, 2]],  # diverges at the first guard -> ret 0
            [[1, 9], [1, 2]],  # diverges at the second guard -> ret 0
            [[1, 2], [1, 3]],  # diverges at the second guard -> ret 0
        ]

    def test_divergent_lanes_abort_to_scalar_with_identical_results(self):
        module = parse_module(GUARD_IR)
        scalar = make_executor(
            module, backend="compiled", strict_memory=False,
        )
        batch = BatchExecutor(module, strict_memory=False, trace_spec=True)
        vectors = self._vectors()
        ref = [scalar.run("ofdf", [_copy(a) for a in v]) for v in vectors]
        assert [r.value for r in ref] == [1, 1, 0, 0, 0]
        got = batch.run_batch("ofdf", vectors)
        for lane, (r, g) in enumerate(zip(ref, got)):
            assert _full_observation(g) == _full_observation(r), (
                f"lane {lane} diverges after trace abort"
            )

    def test_abort_increments_obs_counter(self):
        module = parse_module(GUARD_IR)
        batch = BatchExecutor(module, strict_memory=False, trace_spec=True)
        configure(enabled=True)
        try:
            OBS.counters.pop("exec.trace.abort", None)
            batch.run_batch("ofdf", self._vectors())
            # Three unique divergent lanes abort (the duplicate leader lane
            # is deduplicated, not executed).
            assert OBS.counters.get("exec.trace.abort") == 3
        finally:
            configure(enabled=False)

    def test_lockstep_tier_counts_divergence(self):
        module = parse_module(GUARD_IR)
        batch = BatchExecutor(module, strict_memory=False, trace_spec=False)
        scalar = make_executor(
            module, backend="compiled", strict_memory=False,
        )
        vectors = self._vectors()
        ref = [scalar.run("ofdf", [_copy(a) for a in v]) for v in vectors]
        configure(enabled=True)
        try:
            OBS.counters.pop("exec.batch.diverge", None)
            got = batch.run_batch("ofdf", vectors)
            assert OBS.counters.get("exec.batch.diverge") == 3
        finally:
            configure(enabled=False)
        for lane, (r, g) in enumerate(zip(ref, got)):
            assert _full_observation(g) == _full_observation(r)
