"""Property-based checks of the paper's theorems on random programs.

* Theorem 1 (correctness): repair preserves outputs;
* Theorem 2 (operation invariance): the repaired trace is input-independent;
* Theorem 4 / Property 3 (memory safety): the repair introduces no
  out-of-bounds access on inputs where the original had none;
* the optimiser preserves the semantics of both original and repaired code.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import repair_module
from repro.exec import Interpreter
from repro.opt import optimize
from repro.verify import adapt_inputs

from tests.property.generators import ARRAY_CELLS, argument_lists, ir_modules

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run_original(module, args):
    interpreter = Interpreter(module, strict_memory=False)
    return interpreter.run("f", [list(args[0]), args[1], args[2]])


def run_repaired(repaired, module, args):
    adapted = adapt_inputs(module, "f", [[list(args[0]), args[1], args[2]]])[0]
    interpreter = Interpreter(repaired, strict_memory=False)
    return interpreter.run("f", adapted)


class TestTheorem1Correctness:
    @_SETTINGS
    @given(ir_modules(), argument_lists())
    def test_repair_preserves_outputs(self, module, args):
        original = run_original(module, args)
        repaired = repair_module(module)
        transformed = run_repaired(repaired, module, args)
        assert transformed.value == original.value
        assert transformed.arrays[0] == original.arrays[0]

    @_SETTINGS
    @given(ir_modules(), argument_lists())
    def test_optimizer_preserves_original(self, module, args):
        before = run_original(module, args)
        after = run_original(optimize(module), args)
        assert after.value == before.value
        assert after.arrays[0] == before.arrays[0]

    @_SETTINGS
    @given(ir_modules(), argument_lists())
    def test_optimizer_preserves_repaired(self, module, args):
        repaired = repair_module(module)
        before = run_repaired(repaired, module, args)
        after = run_repaired(optimize(repaired), module, args)
        assert after.value == before.value
        assert after.arrays[0] == before.arrays[0]


class TestTheorem2OperationInvariance:
    @_SETTINGS
    @given(ir_modules(), argument_lists(), argument_lists())
    def test_trace_is_input_independent(self, module, args_a, args_b):
        repaired = repair_module(module)
        trace_a = run_repaired(repaired, module, args_a).trace
        trace_b = run_repaired(repaired, module, args_b).trace
        assert trace_a.operation_signature() == trace_b.operation_signature()

    @_SETTINGS
    @given(ir_modules(), argument_lists(), argument_lists())
    def test_simulated_cycles_are_constant(self, module, args_a, args_b):
        repaired = repair_module(module)
        cycles_a = run_repaired(repaired, module, args_a).cycles
        cycles_b = run_repaired(repaired, module, args_b).cycles
        assert cycles_a == cycles_b


class TestTheorem4MemorySafety:
    @_SETTINGS
    @given(ir_modules(), argument_lists())
    def test_no_new_out_of_bounds(self, module, args):
        """Property 3: violations(repaired) ⊆ "original violated too"."""
        original = run_original(module, args)
        repaired = repair_module(module)
        transformed = run_repaired(repaired, module, args)
        if not original.violations:
            assert not transformed.violations

    @_SETTINGS
    @given(ir_modules())
    def test_repaired_module_is_valid_ssa(self, module):
        from repro.ir import validate_module

        validate_module(repair_module(module))


class TestBaselineContrast:
    @_SETTINGS
    @given(ir_modules(), argument_lists(), argument_lists())
    def test_sc_eliminator_is_operation_invariant_too(
        self, module, args_a, args_b
    ):
        """Wu et al.'s goal holds in our reimplementation as well — its
        defects are memory safety and >2-arm merges, not Property 1."""
        from repro.baseline import sc_eliminate

        transformed = sc_eliminate(module)
        interpreter = Interpreter(transformed, strict_memory=False)
        trace_a = interpreter.run(
            "f", [list(args_a[0]), args_a[1], args_a[2]]
        ).trace
        trace_b = interpreter.run(
            "f", [list(args_b[0]), args_b[1], args_b[2]]
        ).trace
        assert trace_a.operation_signature() == trace_b.operation_signature()
