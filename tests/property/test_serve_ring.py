"""Property tests of the consistent-hash ring the shard router rides on.

The deployment leans on three guarantees (``docs/SERVE.md``):
determinism across processes and insertion orders, bounded key movement
on membership change (~1/N, never a reshuffle), and deterministic
failover that only touches the dead shard's keys.
"""

import subprocess
import sys

from hypothesis import given, settings, strategies as st

from repro.serve.ring import DEFAULT_REPLICAS, HashRing, key_point

shard_names = st.lists(
    st.text(alphabet="abcdefghij0123456789-", min_size=1, max_size=12),
    min_size=1, max_size=8, unique=True,
)

keys = st.lists(
    st.text(alphabet="0123456789abcdef", min_size=8, max_size=16),
    min_size=1, max_size=64, unique=True,
)


class TestDeterminism:
    @given(shard_names, keys)
    def test_insertion_order_is_irrelevant(self, shards, sample):
        forward = HashRing(shards)
        backward = HashRing(reversed(shards))
        for key in sample:
            assert forward.route(key) == backward.route(key)
            assert forward.preference(key) == backward.preference(key)

    @given(keys)
    def test_key_points_never_use_salted_hash(self, sample):
        # sha256-derived, so stable across runs and interpreters by
        # construction; spot-check stability within this process too.
        for key in sample:
            assert key_point(key) == key_point(key)

    def test_routing_is_identical_in_a_fresh_process(self):
        shards = [f"s{i}" for i in range(5)]
        sample = [f"key-{i}" for i in range(200)]
        ring = HashRing(shards)
        local = {key: ring.route(key) for key in sample}
        script = (
            "import json, sys\n"
            "from repro.serve.ring import HashRing\n"
            f"ring = HashRing({shards!r})\n"
            f"sample = {sample!r}\n"
            "print(json.dumps({k: ring.route(k) for k in sample}))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
        )
        import json

        assert json.loads(out.stdout) == local


class TestBoundedMovement:
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_adding_a_shard_moves_about_one_nth(self, n, salt):
        shards = [f"m{salt}-s{i}" for i in range(n)]
        sample = [f"m{salt}-key-{i}" for i in range(400)]
        ring = HashRing(shards)
        before = {key: ring.route(key) for key in sample}
        ring.add(f"m{salt}-new")
        moved = sum(1 for key in sample if ring.route(key) != before[key])
        # Ideal is len/ (n+1); 96 virtual points keep the variance well
        # under 2x ideal (plus slack for the small sample).
        bound = 2.0 * len(sample) / (n + 1) + 20
        assert moved <= bound, f"{moved} of {len(sample)} moved (n={n})"
        # And every moved key moved TO the new shard, nowhere else.
        for key in sample:
            owner = ring.route(key)
            if owner != before[key]:
                assert owner == f"m{salt}-new"

    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_removing_a_shard_only_moves_its_keys(self, n, salt):
        shards = [f"r{salt}-s{i}" for i in range(n)]
        sample = [f"r{salt}-key-{i}" for i in range(400)]
        ring = HashRing(shards)
        before = {key: ring.route(key) for key in sample}
        victim = shards[salt % n]
        ring.remove(victim)
        for key in sample:
            if before[key] != victim:
                assert ring.route(key) == before[key], (
                    f"{key} moved although {victim} did not own it"
                )
            else:
                assert ring.route(key) != victim


class TestFailover:
    @given(st.integers(min_value=2, max_value=8), keys)
    @settings(max_examples=40, deadline=None)
    def test_keys_land_on_live_shards_after_failure(self, n, sample):
        shards = [f"f-s{i}" for i in range(n)]
        ring = HashRing(shards)
        for key in sample:
            owner = ring.route(key)
            live = [s for s in shards if s != owner]
            fallback = ring.route(key, live=live)
            assert fallback in live
            # The fallback is the first live entry of the preference
            # order — the router and every replica agree on it.
            order = ring.preference(key)
            assert order[0] == owner
            assert fallback == next(s for s in order if s != owner)

    @given(st.integers(min_value=2, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_survivor_keys_stay_put_under_failure(self, n):
        shards = [f"p-s{i}" for i in range(n)]
        ring = HashRing(shards)
        sample = [f"p-key-{i}" for i in range(300)]
        dead = shards[0]
        live = shards[1:]
        for key in sample:
            owner = ring.route(key)
            if owner != dead:
                assert ring.route(key, live=live) == owner

    def test_preference_is_a_permutation_of_shards(self):
        shards = [f"perm-s{i}" for i in range(6)]
        ring = HashRing(shards)
        for i in range(50):
            order = ring.preference(f"perm-key-{i}")
            assert sorted(order) == sorted(shards)

    def test_no_live_shard_raises(self):
        ring = HashRing(["a", "b"])
        try:
            ring.route("key", live=[])
        except LookupError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected LookupError")
