"""Property-based tests of the word semantics."""

from hypothesis import given, strategies as st

from repro.ir.ops import WORD_BITS, eval_binop, eval_unop, to_unsigned, wrap

words = st.integers(min_value=-(1 << (WORD_BITS - 1)),
                    max_value=(1 << (WORD_BITS - 1)) - 1)
any_ints = st.integers(min_value=-(1 << 80), max_value=1 << 80)


class TestWrap:
    @given(any_ints)
    def test_wrap_is_idempotent(self, x):
        assert wrap(wrap(x)) == wrap(x)

    @given(any_ints)
    def test_wrap_lands_in_range(self, x):
        w = wrap(x)
        assert -(1 << (WORD_BITS - 1)) <= w < (1 << (WORD_BITS - 1))

    @given(any_ints)
    def test_wrap_preserves_value_mod_2n(self, x):
        assert wrap(x) % (1 << WORD_BITS) == x % (1 << WORD_BITS)

    @given(words)
    def test_unsigned_round_trip(self, x):
        assert wrap(to_unsigned(x)) == x


class TestAlgebra:
    @given(words, words)
    def test_add_commutes(self, a, b):
        assert eval_binop("+", a, b) == eval_binop("+", b, a)

    @given(words, words)
    def test_mul_commutes(self, a, b):
        assert eval_binop("*", a, b) == eval_binop("*", b, a)

    @given(words, words, words)
    def test_add_associates(self, a, b, c):
        left = eval_binop("+", eval_binop("+", a, b), c)
        right = eval_binop("+", a, eval_binop("+", b, c))
        assert left == right

    @given(words, words)
    def test_sub_is_add_of_negation(self, a, b):
        assert eval_binop("-", a, b) == eval_binop("+", a, eval_unop("-", b))

    @given(words)
    def test_xor_self_is_zero(self, a):
        assert eval_binop("^", a, a) == 0

    @given(words)
    def test_double_bitwise_not_is_identity(self, a):
        assert eval_unop("~", eval_unop("~", a)) == a

    @given(words, words)
    def test_comparison_trichotomy(self, a, b):
        lt = eval_binop("<", a, b)
        eq = eval_binop("==", a, b)
        gt = eval_binop(">", a, b)
        assert lt + eq + gt == 1

    @given(words, words)
    def test_division_identity_when_defined(self, a, b):
        if b != 0:
            q = eval_binop("/", a, b)
            r = eval_binop("%", a, b)
            assert wrap(q * b + r) == a

    @given(words, st.integers(min_value=0, max_value=WORD_BITS - 1))
    def test_shift_right_matches_unsigned_division(self, a, n):
        assert eval_binop(">>", a, n) == wrap(to_unsigned(a) >> n)

    @given(words)
    def test_logical_not_is_boolean(self, a):
        assert eval_unop("!", a) in (0, 1)
