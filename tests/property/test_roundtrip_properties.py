"""Round-trip and structural properties of the textual IR and the traces."""

from hypothesis import HealthCheck, given, settings

from repro.exec import Interpreter
from repro.ir import module_to_str, parse_module, validate_module
from repro.transforms import preprocess_module

from tests.property.generators import argument_lists, ir_modules

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestPrinterParser:
    @_SETTINGS
    @given(ir_modules())
    def test_print_parse_print_is_stable(self, module):
        printed = module_to_str(module)
        reparsed = parse_module(printed)
        assert module_to_str(reparsed) == printed

    @_SETTINGS
    @given(ir_modules(), argument_lists())
    def test_reparsed_module_behaves_identically(self, module, args):
        reparsed = parse_module(module_to_str(module))
        run_a = Interpreter(module, strict_memory=False).run(
            "f", [list(args[0]), args[1], args[2]]
        )
        run_b = Interpreter(reparsed, strict_memory=False).run(
            "f", [list(args[0]), args[1], args[2]]
        )
        assert run_a.value == run_b.value
        assert run_a.arrays == run_b.arrays


class TestPreprocessing:
    @_SETTINGS
    @given(ir_modules())
    def test_preprocessed_module_validates(self, module):
        work = module.clone()
        preprocess_module(work)
        validate_module(work)

    @_SETTINGS
    @given(ir_modules(), argument_lists())
    def test_preprocessing_preserves_behaviour(self, module, args):
        work = module.clone()
        preprocess_module(work)
        run_a = Interpreter(module, strict_memory=False).run(
            "f", [list(args[0]), args[1], args[2]]
        )
        run_b = Interpreter(work, strict_memory=False).run(
            "f", [list(args[0]), args[1], args[2]]
        )
        assert run_a.value == run_b.value
        assert run_a.arrays == run_b.arrays


class TestDeterminism:
    @_SETTINGS
    @given(ir_modules(), argument_lists())
    def test_execution_is_deterministic(self, module, args):
        interpreter = Interpreter(module, strict_memory=False)
        first = interpreter.run("f", [list(args[0]), args[1], args[2]])
        second = interpreter.run("f", [list(args[0]), args[1], args[2]])
        assert first.value == second.value
        assert first.cycles == second.cycles
        assert (first.trace.operation_signature()
                == second.trace.operation_signature())
        assert first.trace.data_signature() == second.trace.data_signature()
