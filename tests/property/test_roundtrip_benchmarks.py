"""Satellite: the printer→parser round-trip is lossless on every benchmark.

This is the invariant the on-disk artifact cache rests on — a cached module
is exactly its printed text, so ``parse_module(module_to_str(m))`` must
reprint byte-identically for the original, repaired, and -O1 form of all 24
benchmark programs.  The fast line-oriented parser must also agree with the
general tokenizing parser on this corpus.
"""

import pytest

from repro.bench.suite import BENCHMARKS, load_module
from repro.core import RepairOptions, repair_module
from repro.ir.parser import _Parser, _tokenize, parse_module
from repro.ir.printer import module_to_str
from repro.opt import optimize

_NAMES = [bench.name for bench in BENCHMARKS]


def _variants(name):
    original = load_module(name)
    repaired = repair_module(original, RepairOptions(validate_output=False))
    return {
        "original": original,
        "repaired": repaired,
        "repaired_o1": optimize(repaired, validate=False),
    }


@pytest.mark.parametrize("name", _NAMES)
def test_round_trip_is_lossless(name):
    for variant, module in _variants(name).items():
        text = module_to_str(module)
        reparsed = parse_module(text, name=module.name)
        assert module_to_str(reparsed) == text, f"{name}/{variant}"


@pytest.mark.parametrize("name", _NAMES)
def test_fast_parser_agrees_with_tokenizing_parser(name):
    for variant, module in _variants(name).items():
        text = module_to_str(module)
        slow = _Parser(_tokenize(text)).parse_module(module.name)
        fast = parse_module(text, name=module.name)
        assert module_to_str(fast) == module_to_str(slow), f"{name}/{variant}"


@pytest.mark.parametrize("name", _NAMES)
def test_secret_qualifiers_survive(name):
    original = load_module(name)
    reparsed = parse_module(module_to_str(original), name=original.name)
    for function in original.functions.values():
        assert (
            reparsed.function(function.name).sensitive_params
            == function.sensitive_params
        )
