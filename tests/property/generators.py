"""Thin re-export: the strategies moved to :mod:`repro.fuzz.strategies`.

The fuzz subsystem promoted these Hypothesis strategies into the package
proper (with size/feature knobs); this shim keeps the existing property
tests importing from their historical location.
"""

from repro.fuzz.strategies import ARRAY_CELLS, argument_lists, ir_modules

__all__ = ["ARRAY_CELLS", "argument_lists", "ir_modules"]
