"""CFG utilities: predecessors, topological order, reachability."""

import pytest

from repro.ir import parse_function
from repro.ir.cfg import (
    exit_blocks,
    is_acyclic,
    predecessor_map,
    reachable_labels,
    remove_unreachable_blocks,
    reverse_postorder,
    topological_order,
)

DIAMOND = """
func @f(c: int) {
entry:
  br c, left, right
left:
  jmp join
right:
  jmp join
join:
  x = phi [1, left], [2, right]
  ret x
}
"""

LOOP = """
func @f(c: int) {
entry:
  jmp head
head:
  br c, head, done
done:
  ret 0
}
"""


class TestPredecessors:
    def test_diamond(self):
        preds = predecessor_map(parse_function(DIAMOND))
        assert preds["entry"] == []
        assert preds["left"] == ["entry"]
        assert sorted(preds["join"]) == ["left", "right"]

    def test_undefined_target_rejected(self):
        function = parse_function("func @f() { entry: jmp nowhere\nnowhere: ret 0 }")
        del function.blocks["nowhere"]
        with pytest.raises(KeyError):
            predecessor_map(function)


class TestOrdering:
    def test_topological_order_respects_edges(self):
        order = topological_order(parse_function(DIAMOND))
        assert order[0] == "entry"
        assert order[-1] == "join"
        assert order.index("left") < order.index("join")

    def test_topological_order_rejects_cycles(self):
        with pytest.raises(ValueError):
            topological_order(parse_function(LOOP))

    def test_is_acyclic(self):
        assert is_acyclic(parse_function(DIAMOND))
        assert not is_acyclic(parse_function(LOOP))

    def test_reverse_postorder_starts_at_entry(self):
        rpo = reverse_postorder(parse_function(LOOP))
        assert rpo[0] == "entry"
        assert set(rpo) == {"entry", "head", "done"}

    def test_source_order_tiebreak_is_deterministic(self):
        function = parse_function(DIAMOND)
        assert topological_order(function) == ["entry", "left", "right", "join"]


class TestReachability:
    def test_unreachable_block_detected_and_removed(self):
        function = parse_function("""
        func @f() {
        entry:
          ret 0
        dead:
          ret 1
        }
        """)
        assert reachable_labels(function) == {"entry"}
        assert remove_unreachable_blocks(function) == 1
        assert list(function.blocks) == ["entry"]

    def test_phi_pruned_when_pred_removed(self):
        function = parse_function("""
        func @f() {
        entry:
          jmp join
        dead:
          jmp join
        join:
          x = phi [1, entry], [2, dead]
          ret x
        }
        """)
        remove_unreachable_blocks(function)
        (instr,) = function.blocks["join"].instructions
        # Single remaining arm becomes a move.
        assert instr.dest == "x"
        assert not hasattr(instr, "incomings")

    def test_exit_blocks(self):
        function = parse_function(DIAMOND)
        assert [b.label for b in exit_blocks(function)] == ["join"]
