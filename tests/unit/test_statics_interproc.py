"""Interprocedural taint: summaries, contexts, globals, shadow slots."""

from repro.ir import parse_module
from repro.statics.interproc import (
    TaintContext,
    analyze_module_taint,
    default_roots,
)


def taint(text: str, roots=None, include_unreached=True):
    return analyze_module_taint(parse_module(text), roots, include_unreached)


class TestCallSummaries:
    def test_taint_through_return(self):
        result = taint("""
        func @id(x: int) {
        entry:
          ret x
        }
        func @f(k: int) {
        entry:
          y = call @id(k)
          ret y
        }
        """, roots={"f": ["k"]}, include_unreached=False)
        assert "y" in result.functions["f"].tainted_full

    def test_clean_callee_stays_clean(self):
        result = taint("""
        func @one() {
        entry:
          ret 1
        }
        func @f(k: int) {
        entry:
          y = call @one()
          ret y
        }
        """, roots={"f": ["k"]}, include_unreached=False)
        assert "y" not in result.functions["f"].tainted_full

    def test_context_sensitivity(self):
        # The same helper is called with a secret and with a public
        # argument; only the secret call's result is tainted.
        result = taint("""
        func @id(x: int) {
        entry:
          ret x
        }
        func @f(k: int, pub: int) {
        entry:
          a = call @id(k)
          b = call @id(pub)
          ret a
        }
        """, roots={"f": ["k"]}, include_unreached=False)
        record = result.functions["f"]
        assert "a" in record.tainted_full
        assert "b" not in record.tainted_full
        # Two distinct contexts for @id were summarised.
        assert result.functions["id"].contexts == 2

    def test_taint_through_pointer_argument(self):
        # The callee stores the secret into the caller's buffer.
        result = taint("""
        func @fill(p: ptr, v: int) {
        entry:
          store v, p[0]
          ret 0
        }
        func @f(k: int) {
        entry:
          buf = alloc 2
          c = call @fill(buf, k)
          x = load buf[1]
          ret x
        }
        """, roots={"f": ["k"]}, include_unreached=False)
        assert "x" in result.functions["f"].tainted_full

    def test_taint_through_global(self):
        result = taint("""
        global @state[2]
        func @stash(v: int) {
        entry:
          store v, state[0]
          ret 0
        }
        func @f(k: int) {
        entry:
          c = call @stash(k)
          x = load state[1]
          ret x
        }
        """, roots={"f": ["k"]}, include_unreached=False)
        assert "x" in result.functions["f"].tainted_full

    def test_recursion_falls_back_conservatively(self):
        result = taint("""
        func @loop(x: int) {
        entry:
          y = call @loop(x)
          ret y
        }
        func @f(pub: int, k: int) {
        entry:
          y = call @loop(pub)
          ret y
        }
        """, roots={"f": ["k"]}, include_unreached=False)
        assert result.recursion_fallbacks >= 1
        # The conservative summary taints the result even for the public
        # argument: soundness over precision.
        assert "y" in result.functions["f"].tainted_full


class TestShadowSlots:
    def test_repaired_guarded_load_keeps_data_channel_clean(self):
        # The repair pass's guarded access (the ``, guard`` marker): the
        # *address* is chosen by a secret-steered guard select between two
        # public values (i or 0), so the full channel is tainted but the
        # data channel is not.
        result = taint("""
        func @f(a: ptr, i: int, k: int) {
        entry:
          sh = alloc 1
          inb = mov k == 0
          idx = ctsel inb, i, 0, guard
          x = load a[idx]
          ret x
        }
        """, roots={"f": ["k"]}, include_unreached=False)
        record = result.functions["f"]
        assert "idx" in record.tainted_full
        assert "idx" not in record.tainted_data
        leaks = record.index_leaks
        assert len(leaks) == 1 and not leaks[0].data_tainted

    def test_secret_condition_ternary_is_data_tainted(self):
        # Regression for fuzz case s0000005252-80d7d98b40: a *non-guard*
        # select computes with its condition — ``(k <= x) ? 0 : 1`` encodes
        # the secret in its result even though both arms are public
        # constants.  Treating it like a repair guard certified a real leak.
        result = taint("""
        func @f(a: ptr, k: int) {
        entry:
          c = mov k <= 5
          idx = ctsel c, 0, 1
          x = load a[idx]
          ret x
        }
        """, roots={"f": ["k"]}, include_unreached=False)
        record = result.functions["f"]
        assert "idx" in record.tainted_data
        assert any(l.data_tainted for l in record.index_leaks)

    def test_secret_arm_index_is_data_tainted(self):
        # An S-box index *computed from* the secret stays a data leak even
        # when wrapped in a ctsel.
        result = taint("""
        const global @sbox[256]
        func @f(k: int, n: int) {
        entry:
          i = mov k & 255
          inb = mov i < n
          idx = ctsel inb, i, 0
          x = load sbox[idx]
          ret x
        }
        """, roots={"f": ["k"]}, include_unreached=False)
        record = result.functions["f"]
        assert "idx" in record.tainted_data
        assert any(l.data_tainted for l in record.index_leaks)


class TestRoots:
    def test_default_roots_prefer_declared_secrets(self):
        module = parse_module("""
        func @f(k: secret int, pub: int) {
        entry:
          ret k
        }
        func @g(a: int) {
        entry:
          ret a
        }
        """)
        roots = default_roots(module)
        assert roots == {"f": ["k"], "g": ["a"]}

    def test_include_unreached_false_restricts_report(self):
        result = taint("""
        func @f(k: int) {
        entry:
          ret k
        }
        func @other(k: int) {
        entry:
          p = mov k == 0
          br p, a, b
        a:
          jmp b
        b:
          ret 0
        }
        """, roots={"f": ["k"]}, include_unreached=False)
        assert set(result.functions) == {"f"}

    def test_for_root_marks_pointer_contents(self):
        module = parse_module("""
        func @f(a: ptr, k: int) {
        entry:
          x = load a[0]
          ret x
        }
        """)
        context = TaintContext.for_root(module.functions["f"], ["a", "k"])
        assert "a" in context.pointees
        result = analyze_module_taint(
            module, {"f": ["a", "k"]}, include_unreached=False
        )
        assert "x" in result.functions["f"].tainted_full
