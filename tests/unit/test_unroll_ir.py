"""IR-level counted-loop unrolling."""

import pytest

from repro.exec import Interpreter
from repro.ir import Module, parse_module, validate_module
from repro.transforms import IRUnrollError, unroll_module_loops
from repro.transforms.unroll_ir import MAX_TRIP_COUNT

SUM_LOOP = """
func @sum(a: ptr) {
entry:
  jmp header
header:
  i = phi [0, entry], [i.next, latch]
  acc = phi [0, entry], [acc.next, latch]
  p = mov i < 4
  br p, body, done
body:
  x = load a[i]
  acc.next = mov acc + x
  jmp latch
latch:
  i.next = mov i + 1
  jmp header
done:
  ret acc
}
"""


def unrolled(text: str) -> Module:
    module = parse_module(text)
    unroll_module_loops(module)
    validate_module(module)
    return module


class TestBasicUnrolling:
    def test_sum_loop(self):
        module = unrolled(SUM_LOOP)
        assert Interpreter(module).run("sum", [[1, 2, 3, 4]]).value == 10

    def test_result_is_acyclic(self):
        from repro.ir.cfg import is_acyclic

        module = unrolled(SUM_LOOP)
        assert is_acyclic(module.function("sum"))

    def test_indices_become_constants(self):
        from repro.ir.instructions import Load
        from repro.ir.values import Const

        module = unrolled(SUM_LOOP)
        loads = [i for _, i in module.function("sum").iter_instructions()
                 if isinstance(i, Load)]
        assert len(loads) == 4
        assert sorted(l.index.value for l in loads) == [0, 1, 2, 3]
        assert all(isinstance(l.index, Const) for l in loads)

    def test_zero_trip_loop(self):
        module = unrolled(SUM_LOOP.replace("i < 4", "i < 0"))
        assert Interpreter(module).run("sum", [[1, 2, 3, 4]]).value == 0

    def test_descending_loop(self):
        module = unrolled("""
        func @f(a: ptr) {
        entry:
          jmp header
        header:
          i = phi [3, entry], [i.next, latch]
          acc = phi [0, entry], [acc.next, latch]
          p = mov i >= 1
          br p, body, done
        body:
          x = load a[i]
          acc.next = mov acc + x
          jmp latch
        latch:
          i.next = mov i - 1
          jmp header
        done:
          ret acc
        }
        """)
        assert Interpreter(module).run("f", [[100, 1, 2, 3]]).value == 6

    def test_exit_on_true_arm(self):
        module = unrolled("""
        func @f() {
        entry:
          jmp header
        header:
          i = phi [0, entry], [i.next, latch]
          acc = phi [0, entry], [acc.next, latch]
          p = mov i >= 3
          br p, done, body
        body:
          acc.next = mov acc + 10
          jmp latch
        latch:
          i.next = mov i + 1
          jmp header
        done:
          ret acc
        }
        """)
        assert Interpreter(module).run("f", []).value == 30

    def test_final_induction_value_visible_after_loop(self):
        module = unrolled("""
        func @f() {
        entry:
          jmp header
        header:
          i = phi [0, entry], [i.next, latch]
          p = mov i < 5
          br p, latch, done
        latch:
          i.next = mov i + 2
          jmp header
        done:
          ret i
        }
        """)
        # Exit is taken when i = 6 (0, 2, 4 iterate; 6 fails the test).
        assert Interpreter(module).run("f", []).value == 6


class TestNestedAndRepair:
    def test_nested_loops(self):
        module = unrolled("""
        func @f() {
        entry:
          jmp oh
        oh:
          i = phi [0, entry], [i.n, ol]
          total = phi [0, entry], [total.o, ol]
          po = mov i < 2
          br po, pre, done
        pre:
          jmp ih
        ih:
          j = phi [0, pre], [j.n, il]
          acc = phi [total, pre], [acc.n, il]
          pi = mov j < 2
          br pi, ib, oexit
        ib:
          acc.n = mov acc + 1
          jmp il
        il:
          j.n = mov j + 1
          jmp ih
        oexit:
          total.o = mov acc
          jmp ol
        ol:
          i.n = mov i + 1
          jmp oh
        done:
          ret total
        }
        """)
        assert Interpreter(module).run("f", []).value == 4

    def test_unrolled_loop_is_repairable(self):
        from repro.core import repair_module
        from repro.verify import check_invariance

        module = unrolled(SUM_LOOP)
        repaired = repair_module(module)
        report = check_invariance(
            repaired, "sum", [[[1, 2, 3, 4], 4], [[9, 9, 9, 9], 4]]
        )
        assert report.isochronous and report.memory_safe


class TestRejections:
    def test_dynamic_bound_rejected(self):
        with pytest.raises(IRUnrollError):
            unrolled("""
            func @f(n: int) {
            entry:
              jmp header
            header:
              i = phi [0, entry], [i.next, latch]
              p = mov i < n
              br p, latch, done
            latch:
              i.next = mov i + 1
              jmp header
            done:
              ret i
            }
            """)

    def test_irreducible_style_loop_rejected(self):
        # A self-loop with no induction structure at all.
        with pytest.raises(IRUnrollError):
            unrolled("""
            func @f(c: int) {
            entry:
              jmp spin
            spin:
              br c, spin, done
            done:
              ret 0
            }
            """)

    def test_runaway_trip_count_rejected(self):
        with pytest.raises(IRUnrollError, match="iterations"):
            unrolled(f"""
            func @f() {{
            entry:
              jmp header
            header:
              i = phi [0, entry], [i.next, latch]
              p = mov i != {MAX_TRIP_COUNT * 2}
              br p, latch, done
            latch:
              i.next = mov i + 3
              jmp header
            done:
              ret i
            }}
            """)
