"""Job specs, validation, and content-addressed job keys."""

import pytest

from repro.serve import JOB_KINDS, JobSpec, ProtocolError, job_key
from repro.serve.protocol import decode_json, encode_event, encode_json

SOURCE = """
uint gate(secret uint s, uint p) {
  uint y = 0;
  if (s > p) {
    y = 3;
  }
  return y;
}
"""


def test_payload_round_trip():
    spec = JobSpec(kind="verify", source=SOURCE, name="gate", entry="gate",
                   runs=8, seed=3, array_size=16, backend="interp",
                   tenant="team-a")
    assert JobSpec.from_payload(spec.to_payload()) == spec


def test_run_args_round_trip_freezes_lists():
    payload = JobSpec(kind="run", source=SOURCE, entry="gate").to_payload()
    payload["args"] = [4, [1, 2, 3]]
    spec = JobSpec.from_payload(payload)
    assert spec.args == (4, (1, 2, 3))
    # and the spec stays hashable (it is a dict key in the warm memo)
    hash(spec)


@pytest.mark.parametrize("mutate, message", [
    (lambda p: p.update(kind="banana"), "unknown job kind"),
    (lambda p: p.update(source=""), "non-empty 'source'"),
    (lambda p: p.update(source="x" * (1 << 20 + 1)), "1 MiB"),
    (lambda p: p.update(kind="run", entry=None), "need an 'entry'"),
    (lambda p: p.update(kind="verify", entry=None), "need an 'entry'"),
    (lambda p: p.update(runs=0), "'runs' must be in"),
    (lambda p: p.update(runs=65), "'runs' must be in"),
    (lambda p: p.update(runs=True), "'runs' must be an integer"),
    (lambda p: p.update(array_size=0), "'array_size' must be in"),
    (lambda p: p.update(args=[1.5]), "ints or lists of ints"),
    (lambda p: p.update(args=[[1, "x"]]), "ints or lists of ints"),
    (lambda p: p.update(args="nope"), "'args' must be a list"),
    (lambda p: p.update(tenant=""), "'tenant'"),
    (lambda p: p.update(name=17), "'name'"),
])
def test_rejects_malformed_payloads(mutate, message):
    payload = JobSpec(kind="repair", source=SOURCE).to_payload()
    mutate(payload)
    with pytest.raises(ProtocolError, match=message):
        JobSpec.from_payload(payload)


def test_rejects_non_object_payload():
    with pytest.raises(ProtocolError):
        JobSpec.from_payload([1, 2, 3])


def test_every_kind_is_accepted():
    for kind in JOB_KINDS:
        payload = JobSpec(
            kind=kind, source=SOURCE, entry="gate"
        ).to_payload()
        assert JobSpec.from_payload(payload).kind == kind


def test_job_key_is_content_addressed():
    base = JobSpec(kind="repair", source=SOURCE, name="gate")
    assert job_key(base) == job_key(
        JobSpec(kind="repair", source=SOURCE, name="gate")
    )
    # every option that can change the result changes the key...
    assert job_key(base) != job_key(
        JobSpec(kind="certify", source=SOURCE, name="gate")
    )
    assert job_key(base) != job_key(
        JobSpec(kind="repair", source=SOURCE + "\n", name="gate")
    )
    assert job_key(base) != job_key(
        JobSpec(kind="repair", source=SOURCE, name="gate", optimize=True)
    )
    # ...but the tenant does not: cross-tenant dedup is the point.
    assert job_key(base) == job_key(
        JobSpec(kind="repair", source=SOURCE, name="gate", tenant="other")
    )


def test_canonical_json_is_deterministic():
    blob = encode_json({"b": 1, "a": [2, 3]})
    assert blob == b'{"a":[2,3],"b":1}\n'
    assert decode_json(blob) == {"a": [2, 3], "b": 1}
    with pytest.raises(ProtocolError):
        decode_json(b"{nope")
    assert encode_event({"event": "x"}).endswith(b"\n")
