"""The Fig. 7 rewriting rules in isolation."""

import itertools

from repro.core.rules import (
    RuleContext,
    materialize_length,
    rewrite_load,
    rewrite_phi,
    rewrite_store,
)
from repro.ir import Const, CtSel, Load, Mov, Phi, Store, Var
from repro.ir.instructions import BinExpr


def make_context(out_cond=Var("c"), edge_conds=None, lengths=None,
                 signed_guard=True):
    counter = itertools.count()
    return RuleContext(
        fresh=lambda hint="z": f"{hint}{next(counter)}",
        out_cond=out_cond,
        edge_conds=edge_conds or {},
        length_of=lambda array: (lengths or {}).get(array.name),
        shadow=Var("sh"),
        signed_guard=signed_guard,
    )


class TestPhiRules:
    def test_phi1_becomes_mov(self):
        instrs = rewrite_phi(Phi("x", ((Var("v"), "l0"),)), make_context())
        assert instrs == [Mov("x", Var("v"))]

    def test_phi2_becomes_single_ctsel(self):
        ctx = make_context(edge_conds={"l0": Var("c0"), "l1": Var("c1")})
        instrs = rewrite_phi(
            Phi("x", ((Var("a"), "l0"), (Var("b"), "l1"))), ctx
        )
        assert instrs == [CtSel("x", Var("c0"), Var("a"), Var("b"))]

    def test_phin_builds_nested_chain(self):
        ctx = make_context(edge_conds={
            "l0": Var("c0"), "l1": Var("c1"), "l2": Var("c2"),
        })
        instrs = rewrite_phi(
            Phi("x", ((Var("a"), "l0"), (Var("b"), "l1"), (Var("d"), "l2"))),
            ctx,
        )
        # Chain: z = ctsel(c1, b, d); x = ctsel(c0, a, z).
        assert len(instrs) == 2
        inner, outer = instrs
        assert isinstance(inner, CtSel) and inner.cond == Var("c1")
        assert outer.dest == "x" and outer.cond == Var("c0")
        assert outer.if_false == Var(inner.dest)


class TestLoadRule:
    def test_structure_matches_figure7(self):
        ctx = make_context(lengths={"m": Var("n")})
        access = rewrite_load(Load("x", Var("m"), Var("i")), ctx)
        kinds = [type(i).__name__ for i in access.instructions]
        # bound check(s), the or-with-condition, two selects, the load.
        assert kinds[-3:] == ["CtSel", "CtSel", "Load"]
        final = access.instructions[-1]
        assert final.dest == "x"
        assert final.array == access.safe_array

    def test_unknown_length_becomes_zero_contract(self):
        ctx = make_context(lengths={})
        access = rewrite_load(Load("x", Var("m"), Var("i")), ctx)
        first = access.instructions[0]
        assert isinstance(first.expr, BinExpr)
        assert first.expr.rhs == Const(0)

    def test_signed_guard_adds_lower_bound_check(self):
        with_guard = rewrite_load(
            Load("x", Var("m"), Var("i")),
            make_context(lengths={"m": Var("n")}, signed_guard=True),
        )
        without_guard = rewrite_load(
            Load("x", Var("m"), Var("i")),
            make_context(lengths={"m": Var("n")}, signed_guard=False),
        )
        assert (len(with_guard.instructions)
                == len(without_guard.instructions) + 2)

    def test_constant_index_skips_lower_bound_check(self):
        access = rewrite_load(
            Load("x", Var("m"), Const(3)),
            make_context(lengths={"m": Var("n")}, signed_guard=True),
        )
        # 0 <= 3 is proven statically; only the upper bound is emitted.
        comparisons = [
            i for i in access.instructions
            if isinstance(i, Mov) and isinstance(i.expr, BinExpr)
            and i.expr.op in ("<", "<=")
        ]
        assert len(comparisons) == 1

    def test_expression_length_is_materialized(self):
        ctx = make_context(lengths={"m": BinExpr("*", Var("n"), Const(2))})
        access = rewrite_load(Load("x", Var("m"), Var("i")), ctx)
        first = access.instructions[0]
        assert isinstance(first, Mov)
        assert first.expr == BinExpr("*", Var("n"), Const(2))


class TestStoreRule:
    def test_store_reuses_load_artefacts(self):
        ctx = make_context(lengths={"m": Var("n")})
        instrs = rewrite_store(Store(Var("v"), Var("m"), Var("i")), ctx)
        kinds = [type(i).__name__ for i in instrs]
        assert kinds[-2:] == ["CtSel", "Store"]
        select = instrs[-2]
        store = instrs[-1]
        assert select.cond == Var("c")          # the outgoing condition
        assert select.if_true == Var("v")       # new value when c holds
        assert store.value == Var(select.dest)

    def test_store_address_goes_through_selects(self):
        ctx = make_context(lengths={})
        instrs = rewrite_store(Store(Const(1), Var("m"), Var("i")), ctx)
        store = instrs[-1]
        ctsel_dests = {i.dest for i in instrs if isinstance(i, CtSel)}
        assert store.array.name in ctsel_dests


class TestMaterializeLength:
    def test_values_pass_through(self):
        out = []
        assert materialize_length(Var("n"), lambda h: "t0", out) == Var("n")
        assert materialize_length(Const(4), lambda h: "t0", out) == Const(4)
        assert out == []

    def test_none_is_zero(self):
        out = []
        assert materialize_length(None, lambda h: "t0", out) == Const(0)

    def test_expression_emits_mov(self):
        out = []
        result = materialize_length(
            BinExpr("+", Var("n"), Const(1)), lambda h: "len0", out
        )
        assert result == Var("len0")
        assert out == [Mov("len0", BinExpr("+", Var("n"), Const(1)))]
