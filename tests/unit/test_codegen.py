"""MiniC code generation: SSA construction, widths, calls, errors."""

import pytest

from repro import compile_minic, run_function
from repro.frontend import CodegenError, compile_source
from repro.ir import validate_module


def result_of(source: str, name: str, args):
    return run_function(compile_minic(source), name, args)


class TestScalars:
    def test_declarations_and_assignment(self):
        assert result_of("uint f() { uint x = 3; x = x + 1; return x; }",
                         "f", []) == 4

    def test_default_initialisation_is_zero(self):
        assert result_of("uint f() { uint x; return x; }", "f", []) == 0

    def test_uninitialised_before_branch_merge(self):
        source = """
        uint f(uint c) {
          uint x = 0;
          if (c) { x = 1; } else { x = 2; }
          return x;
        }
        """
        assert result_of(source, "f", [1]) == 1
        assert result_of(source, "f", [0]) == 2

    def test_if_without_else(self):
        source = "uint f(uint c) { uint x = 9; if (c) { x = 1; } return x; }"
        assert result_of(source, "f", [5]) == 1
        assert result_of(source, "f", [0]) == 9

    def test_return_inside_branch(self):
        source = """
        uint f(uint c) {
          if (c) { return 1; }
          return 2;
        }
        """
        assert result_of(source, "f", [1]) == 1
        assert result_of(source, "f", [0]) == 2

    def test_both_branches_return(self):
        source = "uint f(uint c) { if (c) { return 1; } else { return 2; } }"
        assert result_of(source, "f", [0]) == 2

    def test_branch_local_declarations_are_scoped(self):
        source = """
        uint f(uint c) {
          uint r = 0;
          if (c) { uint t = 5; r = t; } else { uint t = 7; r = t; }
          return r;
        }
        """
        assert result_of(source, "f", [1]) == 5
        assert result_of(source, "f", [0]) == 7


class TestWidths:
    def test_u32_wraps(self):
        assert result_of(
            "uint f() { u32 x = 0xffffffff; x = x + 1; return x; }", "f", []
        ) == 0

    def test_u8_wraps(self):
        assert result_of(
            "uint f() { u8 x = 255; x = x + 1; return x; }", "f", []
        ) == 0

    def test_u32_shift_masks(self):
        assert result_of(
            "uint f() { u32 x = 0x80000000; return x << 1; }", "f", []
        ) == 0

    def test_u32_logical_shift_right(self):
        assert result_of(
            "uint f() { u32 x = 0x80000000; return x >> 31; }", "f", []
        ) == 1

    def test_u32_bitnot_masks(self):
        assert result_of("uint f() { u32 x = 0; return ~x; }", "f", []) \
            == 0xFFFFFFFF

    def test_cast_truncates(self):
        assert result_of("uint f(uint v) { return (u8) v; }", "f", [0x1FF]) \
            == 0xFF

    def test_literal_adapts_to_sized_operand(self):
        assert result_of(
            "uint f() { u32 x = 1; return x * 0x100000000 + 7; }", "f", []
        ) == 7

    def test_loads_from_u8_arrays_are_masked(self):
        # The caller may pass un-normalised contents.
        source = "uint f(u8 *a) { return a[0]; }"
        assert result_of(source, "f", [[0x1FF]]) == 0xFF


class TestLogicalOperators:
    def test_and_or_are_branch_free_and_total(self):
        source = "uint f(uint a, uint b) { return (a && b) | ((a || b) << 1); }"
        assert result_of(source, "f", [0, 0]) == 0
        assert result_of(source, "f", [3, 0]) == 2
        assert result_of(source, "f", [3, 5]) == 3

    def test_ternary_is_ctsel(self):
        module = compile_minic("uint f(uint c) { return c ? 1 : 2; }")
        from repro.ir.instructions import CtSel

        instrs = [i for _, i in module.function("f").iter_instructions()]
        assert any(isinstance(i, CtSel) for i in instrs)

    def test_no_branches_for_logical_expressions(self):
        module = compile_minic("uint f(uint a, uint b) { return a && b; }")
        assert len(module.function("f").blocks) == 1


class TestArrays:
    def test_local_array_with_initialiser(self):
        source = """
        uint f() {
          uint a[3] = {10, 20};
          return a[0] + a[1] + a[2];
        }
        """
        assert result_of(source, "f", []) == 30

    def test_global_array_read_write(self):
        source = """
        uint state[2];
        uint f(uint v) { state[0] = v; return state[0] + state[1]; }
        """
        assert result_of(source, "f", [5]) == 5

    def test_const_global_initialised(self):
        source = """
        const u8 tab[4] = {9, 8, 7, 6};
        uint f(uint i) { return tab[i]; }
        """
        assert result_of(source, "f", [2]) == 7

    def test_oversized_initialiser_rejected(self):
        with pytest.raises(CodegenError, match="initialisers"):
            compile_minic("uint f() { uint a[1] = {1, 2}; return 0; }")

    def test_array_as_scalar_rejected(self):
        with pytest.raises(CodegenError, match="used as a scalar"):
            compile_minic("uint f(uint *a) { return a; }")

    def test_scalar_indexing_rejected(self):
        with pytest.raises(CodegenError, match="not an array"):
            compile_minic("uint f(uint a) { return a[0]; }")

    def test_assignment_to_array_rejected(self):
        with pytest.raises(CodegenError, match="assign to array"):
            compile_minic("uint f(uint *a, uint *b) { a = b; return 0; }")


class TestCalls:
    def test_call_with_array_and_scalar(self):
        source = """
        uint get(uint *p, uint i) { return p[i]; }
        uint f(uint *a) { return get(a, 1) * 10; }
        """
        assert result_of(source, "f", [[3, 4]]) == 40

    def test_void_function_call_statement(self):
        source = """
        uint sink[1];
        void poke(uint v) { sink[0] = v; return; }
        uint f() { poke(7); return sink[0]; }
        """
        assert result_of(source, "f", []) == 7

    def test_void_call_in_expression_rejected(self):
        with pytest.raises(CodegenError, match="void"):
            compile_minic("""
            void g() { return; }
            uint f() { return g() + 1; }
            """)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(CodegenError, match="arguments"):
            compile_minic("""
            uint g(uint a) { return a; }
            uint f() { return g(); }
            """)

    def test_undefined_callee_rejected(self):
        with pytest.raises(CodegenError, match="undefined function"):
            compile_minic("uint f() { return ghost(); }")

    def test_pointer_arg_must_be_array_name(self):
        with pytest.raises(CodegenError, match="array name"):
            compile_minic("""
            uint g(uint *p) { return p[0]; }
            uint f(uint x) { return g(x + 1); }
            """)


class TestErrors:
    def test_redefinition_rejected(self):
        with pytest.raises(CodegenError, match="redefinition"):
            compile_minic("uint f() { uint x = 1; uint x = 2; return x; }")

    def test_undefined_variable_rejected(self):
        with pytest.raises(CodegenError, match="undefined variable"):
            compile_minic("uint f() { return ghost; }")

    def test_sensitive_params_recorded(self):
        module = compile_minic(
            "uint f(secret uint *k, uint *pub) { return k[0] ^ pub[0]; }"
        )
        assert module.function("f").sensitive_params == ("k",)

    def test_output_is_valid_ssa(self, fig1_module):
        validate_module(fig1_module)
