"""The baseline's static cache-conflict analysis."""

from repro.baseline.cache_analysis import (
    WORDS_PER_LINE,
    analyze_cache_conflicts,
)
from repro.ir import parse_function


class TestClassification:
    def test_repeated_constant_access_hits(self):
        function = parse_function("""
        func @f(a: ptr) {
        entry:
          x = load a[0]
          y = load a[0]
          r = mov x + y
          ret r
        }
        """)
        result = analyze_cache_conflicts(function)
        assert result.accesses == 2
        assert result.guaranteed_hits == 1
        assert result.may_miss == 1  # the cold first touch

    def test_same_line_different_word_hits(self):
        function = parse_function(f"""
        func @f(a: ptr) {{
        entry:
          x = load a[0]
          y = load a[{WORDS_PER_LINE - 1}]
          r = mov x + y
          ret r
        }}
        """)
        result = analyze_cache_conflicts(function)
        assert result.guaranteed_hits == 1

    def test_different_lines_both_miss(self):
        function = parse_function(f"""
        func @f(a: ptr) {{
        entry:
          x = load a[0]
          y = load a[{WORDS_PER_LINE}]
          r = mov x + y
          ret r
        }}
        """)
        result = analyze_cache_conflicts(function)
        assert result.may_miss == 2

    def test_unknown_index_always_may_miss(self):
        function = parse_function("""
        func @f(a: ptr, i: int) {
        entry:
          x = load a[i]
          y = load a[i]
          r = mov x + y
          ret r
        }
        """)
        result = analyze_cache_conflicts(function)
        assert result.may_miss == 2
        assert "a" in result.miss_prone_arrays

    def test_distinct_arrays_do_not_alias(self):
        function = parse_function("""
        func @f(a: ptr, b: ptr) {
        entry:
          x = load a[0]
          y = load b[0]
          r = mov x + y
          ret r
        }
        """)
        result = analyze_cache_conflicts(function)
        assert result.guaranteed_hits == 0

    def test_stores_count_as_accesses(self):
        function = parse_function("""
        func @f(a: ptr) {
        entry:
          store 1, a[0]
          x = load a[0]
          ret x
        }
        """)
        result = analyze_cache_conflicts(function)
        assert result.accesses == 2
        assert result.guaranteed_hits == 1

    def test_memory_free_function(self):
        function = parse_function("func @f(x: int) { entry: ret x }")
        result = analyze_cache_conflicts(function)
        assert result.accesses == 0
        assert result.miss_prone_arrays == frozenset()


class TestPreloadGating:
    def test_no_may_miss_no_preload(self):
        """sc_eliminate only preloads when the analysis finds leaks."""
        from repro.baseline import sc_eliminate
        from repro.baseline.preload import PRELOAD_SINK
        from repro.ir import parse_module

        module = parse_module("""
        const global @tab[4] = [1, 2, 3, 4]
        func @f(k: int) {
        entry:
          i = mov k & 3
          x = load tab[i]
          ret x
        }
        """)
        transformed = sc_eliminate(module)
        assert PRELOAD_SINK in transformed.globals  # gated in, table preloaded
