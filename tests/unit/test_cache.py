"""Set-associative cache simulator."""

import random

import pytest

from repro.cache import Cache, CacheHierarchy


class _ListLRUCache(Cache):
    """The original list-based implementation, kept as a reference model
    for the OrderedDict rewrite: same geometry, same LRU policy, O(ways)
    per hit."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self._lists = [[] for _ in range(self.num_sets)]

    def access(self, address: int) -> bool:
        line = address // self.line_size
        index = line % self.num_sets
        tag = line // self.num_sets
        entries = self._lists[index]
        self.stats.accesses += 1
        if tag in entries:
            entries.remove(tag)
            entries.insert(0, tag)
            self.stats.hits += 1
            return True
        entries.insert(0, tag)
        if len(entries) > self.ways:
            entries.pop()
        self.stats.misses += 1
        return False


class TestCacheGeometry:
    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            Cache(size=3000)

    def test_inconsistent_geometry_rejected(self):
        with pytest.raises(ValueError):
            Cache(size=1024, line_size=64, ways=32)

    def test_set_count(self):
        cache = Cache(size=32768, line_size=64, ways=8)
        assert cache.num_sets == 64


class TestBehaviour:
    def test_cold_miss_then_hit(self):
        cache = Cache(size=1024, line_size=64, ways=2)
        assert cache.access(0) is False
        assert cache.access(0) is True
        assert cache.access(63) is True  # same line
        assert cache.access(64) is False  # next line

    def test_lru_eviction(self):
        # Direct-mapped-ish: 2 ways per set; three conflicting lines evict.
        cache = Cache(size=256, line_size=64, ways=2)  # 2 sets
        stride = 64 * cache.num_sets  # same set every time
        cache.access(0)
        cache.access(stride)
        cache.access(2 * stride)  # evicts line 0
        assert cache.access(0) is False

    def test_lru_refresh_on_hit(self):
        cache = Cache(size=256, line_size=64, ways=2)
        stride = 64 * cache.num_sets
        cache.access(0)
        cache.access(stride)
        cache.access(0)  # refresh 0; stride becomes LRU
        cache.access(2 * stride)  # evicts stride, not 0
        assert cache.access(0) is True
        assert cache.access(stride) is False

    def test_stats_and_reset(self):
        cache = Cache(size=256, line_size=64, ways=2)
        cache.access(0)
        cache.access(0)
        assert cache.stats.as_tuple() == (2, 1, 1)
        assert cache.stats.miss_rate == 0.5
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.access(0) is False  # cold again


class TestLRUEquivalence:
    """The OrderedDict-based sets must reproduce the original list-based
    implementation access for access, not just in aggregate."""

    @pytest.mark.parametrize("geometry", [
        dict(size=256, line_size=64, ways=2),
        dict(size=1024, line_size=64, ways=4),
        dict(size=4096, line_size=32, ways=8),
    ])
    def test_identical_hit_miss_sequences(self, geometry):
        fast = Cache(**geometry)
        reference = _ListLRUCache(**geometry)
        rng = random.Random(1234)
        # Skewed towards small addresses so sets actually fill and evict.
        addresses = [rng.randrange(0, 8 * geometry["size"])
                     for _ in range(5000)]
        sequence_fast = [fast.access(a) for a in addresses]
        sequence_ref = [reference.access(a) for a in addresses]
        assert sequence_fast == sequence_ref
        assert fast.stats.as_tuple() == reference.stats.as_tuple()

    def test_equivalence_survives_reset(self):
        fast = Cache(size=256, line_size=64, ways=2)
        reference = _ListLRUCache(size=256, line_size=64, ways=2)
        for cache in (fast, reference):
            cache.access(0)
            cache.access(64)
        fast.reset()
        # After reset the rewritten cache is cold again.
        assert fast.access(0) is False
        assert fast.stats.as_tuple() == (1, 0, 1)


class TestHierarchy:
    def test_split_counters(self):
        hierarchy = CacheHierarchy()
        hierarchy.instr_fetch(0x1000)
        hierarchy.data_access(0x2000, is_write=False)
        hierarchy.data_access(0x2000, is_write=True)
        report = hierarchy.report()
        assert report.instr_fetches == 1
        assert report.i1_misses == 1
        assert report.data_reads == 1
        assert report.data_writes == 1
        assert report.d1_read_misses == 1
        assert report.d1_write_misses == 0  # second access hits

    def test_signature_is_comparable(self):
        a = CacheHierarchy()
        b = CacheHierarchy()
        for hierarchy in (a, b):
            hierarchy.data_access(0x40, is_write=False)
        assert a.report().signature() == b.report().signature()

    def test_reset(self):
        hierarchy = CacheHierarchy()
        hierarchy.data_access(0, is_write=True)
        hierarchy.reset()
        assert hierarchy.report().signature() == (0, 0, 0, 0, 0, 0)


class TestGeometryDiagnostics:
    """Validation errors must name the offending parameter and value."""

    @pytest.mark.parametrize("kwargs, param, value", [
        (dict(size=3000), "size", 3000),
        (dict(line_size=48), "line_size", 48),
        (dict(ways=3), "ways", 3),
    ])
    def test_error_names_parameter_and_value(self, kwargs, param, value):
        with pytest.raises(ValueError) as excinfo:
            Cache(**kwargs)
        assert f"{param}={value!r}" in str(excinfo.value)

    def test_inconsistent_geometry_error_names_all_three(self):
        with pytest.raises(ValueError) as excinfo:
            Cache(size=1024, line_size=64, ways=32)
        message = str(excinfo.value)
        assert "size=1024" in message
        assert "line_size=64" in message
        assert "ways=32" in message


class TestEdgeGeometries:
    def test_single_way_eviction_order(self):
        # ways=1 is direct-mapped: two lines falling into the same set
        # evict each other on every access — the strictest LRU case.
        cache = Cache(size=128, line_size=64, ways=1)  # 2 sets
        conflicting = [0, 128, 0, 128]  # both map to set 0
        assert [cache.access(a) for a in conflicting] == [False] * 4
        assert cache.stats.as_tuple() == (4, 0, 4)
        # A line in the other set is undisturbed by the thrashing.
        assert cache.access(64) is False
        assert cache.access(64) is True

    def test_line_boundary_accounting(self):
        # Addresses within one line share it; the first byte of the next
        # line is a distinct line even though the addresses differ by 1.
        cache = Cache(size=256, line_size=64, ways=2)
        assert cache.access(0) is False
        assert cache.access(63) is True     # same line
        assert cache.access(64) is False    # next line
        assert cache.stats.as_tuple() == (3, 1, 2)

    def test_stats_determinism_across_reset(self):
        cache = Cache(size=256, line_size=64, ways=2)
        addresses = [0, 64, 128, 0, 256, 64, 512, 0]
        first = [cache.access(a) for a in addresses]
        stats_first = cache.stats.as_tuple()
        cache.reset()
        second = [cache.access(a) for a in addresses]
        assert first == second
        assert cache.stats.as_tuple() == stats_first

    def test_reset_reuses_set_objects(self):
        # reset() is called once per run across whole input families; it
        # must clear the per-set maps in place, not reallocate them.
        cache = Cache(size=256, line_size=64, ways=2)
        before = [id(entries) for entries in cache._sets]
        cache.access(0)
        cache.reset()
        assert [id(entries) for entries in cache._sets] == before
        assert all(len(entries) == 0 for entries in cache._sets)
