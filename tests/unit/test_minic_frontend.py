"""MiniC lexer, parser, and unroller."""

import pytest

from repro.frontend import (
    MiniCSyntaxError,
    UnrollError,
    compile_source,
    parse_source,
    tokenize,
    unroll_program,
)
from repro.frontend import ast_nodes as ast


class TestLexer:
    def test_hex_and_decimal_literals(self):
        tokens = tokenize("0xff 255")
        assert [t.text for t in tokens[:2]] == ["0xff", "255"]

    def test_comments_stripped(self):
        tokens = tokenize("a // line\n /* block\n comment */ b")
        assert [t.text for t in tokens if t.kind == "name"] == ["a", "b"]

    def test_unterminated_comment(self):
        with pytest.raises(MiniCSyntaxError):
            tokenize("/* oops")

    def test_multichar_operators(self):
        tokens = tokenize("a <<= b")  # lexes as <<, =
        ops = [t.text for t in tokens if t.kind == "op"]
        assert ops == ["<<", "="]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:3]] == [1, 2, 3]


class TestParser:
    def test_function_with_params(self):
        program = parse_source(
            "uint f(secret u32 *key, uint n, u8 data[]) { return n; }"
        )
        (func,) = program.functions
        assert [p.name for p in func.params] == ["key", "n", "data"]
        assert func.params[0].secret and func.params[0].is_pointer
        assert not func.params[1].is_pointer
        assert func.params[2].is_pointer

    def test_global_declarations(self):
        program = parse_source("const u8 tab[4] = {1, 2, 3, 4}; uint g[2];")
        assert program.globals[0].const
        assert len(program.globals[0].init) == 4
        assert not program.globals[1].const

    def test_operator_precedence(self):
        program = parse_source("uint f(uint a, uint b) { return a + b * 2; }")
        ret = program.functions[0].body[0]
        assert isinstance(ret.value, ast.Binary) and ret.value.op == "+"
        assert isinstance(ret.value.rhs, ast.Binary) and ret.value.rhs.op == "*"

    def test_ternary(self):
        program = parse_source("uint f(uint c) { return c ? 1 : 2; }")
        assert isinstance(program.functions[0].body[0].value, ast.Ternary)

    def test_cast(self):
        program = parse_source("uint f(uint a) { return (u8) a; }")
        assert isinstance(program.functions[0].body[0].value, ast.Cast)

    def test_else_if_chain(self):
        program = parse_source("""
        uint f(uint a) {
          if (a == 0) { return 1; } else if (a == 1) { return 2; }
          return 3;
        }
        """)
        outer = program.functions[0].body[0]
        assert isinstance(outer.else_body[0], ast.If)

    def test_for_loop_shape_enforced(self):
        with pytest.raises(MiniCSyntaxError, match="counter"):
            parse_source("uint f() { for (i = 0; 1 < 2; i = i + 1) { } return 0; }")
        with pytest.raises(MiniCSyntaxError, match="step"):
            parse_source("uint f() { for (i = 0; i < 2; i = i * 2) { } return 0; }")

    def test_void_return(self):
        program = parse_source("void f() { return; }")
        assert isinstance(program.functions[0].body[0], ast.Return)

    def test_keyword_in_expression_rejected(self):
        with pytest.raises(MiniCSyntaxError):
            parse_source("uint f() { return if; }")


class TestUnroller:
    def unrolled(self, text: str):
        return unroll_program(parse_source(text)).functions[0].body

    def test_simple_loop_expands(self):
        body = self.unrolled("""
        uint f(uint *a) {
          for (uint i = 0; i < 3; i = i + 1) { a[i] = i; }
          return 0;
        }
        """)
        stores = [s for s in body if isinstance(s, ast.StoreStmt)]
        assert [s.index.value for s in stores] == [0, 1, 2]
        assert [s.value.value for s in stores] == [0, 1, 2]

    def test_descending_loop(self):
        body = self.unrolled("""
        uint f(uint *a) {
          for (uint i = 2; i >= 1; i = i - 1) { a[i] = 0; }
          return 0;
        }
        """)
        stores = [s for s in body if isinstance(s, ast.StoreStmt)]
        assert [s.index.value for s in stores] == [2, 1]

    def test_nested_loops(self):
        body = self.unrolled("""
        uint f(uint *a) {
          for (uint i = 0; i < 2; i = i + 1) {
            for (uint j = 0; j < 2; j = j + 1) { a[i * 2 + j] = 0; }
          }
          return 0;
        }
        """)
        stores = [s for s in body if isinstance(s, ast.StoreStmt)]
        # Indices fold to constants at codegen; here still expressions with
        # the counters substituted.
        assert len(stores) == 4

    def test_zero_trip_loop(self):
        body = self.unrolled("""
        uint f() {
          for (uint i = 5; i < 5; i = i + 1) { i = i; }
          return 0;
        }
        """)
        assert len(body) == 1  # only the return

    def test_per_iteration_locals_are_renamed(self):
        body = self.unrolled("""
        uint f(uint *a) {
          for (uint i = 0; i < 2; i = i + 1) {
            uint t = a[i];
            a[i] = t + 1;
          }
          return 0;
        }
        """)
        decls = [s.name for s in body if isinstance(s, ast.Decl)]
        assert len(decls) == 2
        assert len(set(decls)) == 2  # distinct names per iteration

    def test_static_if_folds(self):
        body = self.unrolled("""
        uint f(uint *a) {
          for (uint i = 0; i < 3; i = i + 1) {
            if (i < 2) { a[i] = 1; } else { a[i] = 2; }
          }
          return 0;
        }
        """)
        stores = [s for s in body if isinstance(s, ast.StoreStmt)]
        assert [s.value.value for s in stores] == [1, 1, 2]
        assert not any(isinstance(s, ast.If) for s in body)

    def test_dynamic_bound_rejected(self):
        with pytest.raises(UnrollError, match="constant"):
            unroll_program(parse_source("""
            uint f(uint n) {
              for (uint i = 0; i < n; i = i + 1) { i = i; }
              return 0;
            }
            """))

    def test_zero_step_rejected(self):
        with pytest.raises(UnrollError, match="zero step"):
            unroll_program(parse_source("""
            uint f() {
              for (uint i = 0; i < 3; i = i + 0) { }
              return 0;
            }
            """))

    def test_counter_assignment_in_body_rejected(self):
        with pytest.raises(UnrollError, match="counter"):
            unroll_program(parse_source("""
            uint f() {
              for (uint i = 0; i < 3; i = i + 1) { i = 7; }
              return 0;
            }
            """))

    def test_trip_count_limit(self):
        with pytest.raises(UnrollError, match="iterations"):
            unroll_program(parse_source("""
            uint f() {
              for (uint i = 0; i < 100000; i = i + 1) { }
              return 0;
            }
            """))

    def test_shadowing_counter_rejected(self):
        with pytest.raises(UnrollError, match="shadows"):
            unroll_program(parse_source("""
            uint f() {
              for (uint i = 0; i < 2; i = i + 1) { uint i = 3; }
              return 0;
            }
            """))
