"""The structured diagnostics framework (rule catalogue, renderers)."""

import json

import pytest

from repro.statics.diagnostics import (
    RULES,
    SEVERITIES,
    Anchor,
    Diagnostic,
    DiagnosticSink,
    diagnostics_from_json,
    render_json,
    render_text,
    sort_diagnostics,
)


def diag(rule="CT-BRANCH-SECRET", severity="error", message="m",
         function="f", block="entry", index=0, instruction=None, fixit=None):
    return Diagnostic(
        rule=rule,
        severity=severity,
        message=message,
        anchor=Anchor(function, block, index, instruction),
        fixit=fixit,
    )


class TestCatalogue:
    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown diagnostic rule"):
            diag(rule="CT-NOT-A-RULE")

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="unknown severity"):
            diag(severity="fatal")

    def test_every_rule_has_a_description(self):
        for rule, description in RULES.items():
            assert rule == rule.upper()
            assert description

    def test_docs_catalogue_matches_code(self):
        # docs/STATIC_ANALYSIS.md quotes the catalogue; a drift means the
        # doc table or RULES was edited without the other.
        from pathlib import Path

        doc = Path(__file__).resolve().parents[2] / "docs" / "STATIC_ANALYSIS.md"
        text = doc.read_text()
        for rule in RULES:
            assert f"`{rule}`" in text, f"{rule} missing from STATIC_ANALYSIS.md"


class TestAnchor:
    def test_str_forms(self):
        assert str(Anchor("f")) == "@f"
        assert str(Anchor("f", "entry")) == "@f:entry"
        assert str(Anchor("f", "entry", 3)) == "@f:entry:#3"
        assert str(Anchor("f", "entry", -1)) == "@f:entry:terminator"

    def test_round_trip(self):
        anchor = Anchor("f", "entry", 2, "x = mov k + 1")
        assert Anchor.from_dict(anchor.as_dict()) == anchor

    def test_sparse_round_trip(self):
        anchor = Anchor("f")
        record = anchor.as_dict()
        assert record == {"function": "f"}
        assert Anchor.from_dict(record) == anchor


class TestRendering:
    def test_render_text_orders_by_severity(self):
        text = render_text([
            diag(rule="CT-SELECTOR-INDEX", severity="warning", message="w"),
            diag(rule="CT-BRANCH-SECRET", severity="error", message="e"),
        ])
        assert text.index("error[") < text.index("warning[")
        assert text.endswith("1 error, 1 warning")

    def test_render_text_empty(self):
        assert render_text([]) == "no diagnostics"

    def test_render_includes_instruction_and_fixit(self):
        text = diag(instruction="br p, a, b", fixit="repair it").render()
        assert "| br p, a, b" in text
        assert "fix-it: repair it" in text

    def test_sort_is_stable_and_total(self):
        diagnostics = [
            diag(message="b", index=1),
            diag(message="a", index=1),
            diag(severity="note", message="n"),
            diag(function="a"),
        ]
        ordered = sort_diagnostics(diagnostics)
        assert ordered == sort_diagnostics(list(reversed(diagnostics)))
        assert [d.severity for d in ordered] == [
            "error", "error", "error", "note",
        ]


class TestJson:
    def test_round_trip(self):
        diagnostics = [
            diag(fixit="do the thing", instruction="x = mov k"),
            diag(rule="IR-SSA-UNDEF", severity="error", message="undef",
                 block=None, index=None),
            diag(rule="CT-SELECTOR-INDEX", severity="warning"),
        ]
        text = render_json(diagnostics)
        assert diagnostics_from_json(text) == sort_diagnostics(diagnostics)

    def test_deterministic_and_sorted_keys(self):
        diagnostics = [diag(message="zz"), diag(message="aa")]
        once = render_json(diagnostics, module="m")
        again = render_json(list(reversed(diagnostics)), module="m")
        assert once == again
        payload = json.loads(once)
        assert payload["module"] == "m"
        assert [d["message"] for d in payload["diagnostics"]] == ["aa", "zz"]

    def test_extra_keys_survive(self):
        payload = json.loads(render_json([], verdicts={"f": "ok"}))
        assert payload["verdicts"] == {"f": "ok"}


class TestSink:
    def test_collect_mode_accumulates(self):
        sink = DiagnosticSink()
        sink.emit(diag(severity="warning", rule="CT-SELECTOR-INDEX"))
        assert not sink.has_errors
        sink.emit(diag())
        assert sink.has_errors
        assert len(sink.diagnostics) == 2

    def test_strict_mode_raises_on_error(self):
        class Boom(Exception):
            def __init__(self, message, diagnostic=None):
                super().__init__(message)
                self.diagnostic = diagnostic

        sink = DiagnosticSink(strict_exception=Boom)
        sink.emit(diag(severity="warning", rule="CT-SELECTOR-INDEX"))
        with pytest.raises(Boom) as exc:
            sink.emit(diag(message="bad branch"))
        assert exc.value.diagnostic.rule == "CT-BRANCH-SECRET"
        assert "bad branch" in str(exc.value)

    def test_severity_order(self):
        assert SEVERITIES == ("error", "warning", "note")
