"""The fuzz campaign driver: planted-bug detection and determinism.

The headline acceptance test plants a mutation-style bug in a fixture
copy of the repair's [store] rewriting rule (the ctsel arms swapped, so
dead paths write the new value and live paths keep the old one) and
asserts the harness catches it, shrinks it to an exact minimal program,
and stores a corpus reproducer that fails under the buggy repair but
passes under the real one.
"""

from unittest import mock

import pytest

from repro.core import rules
from repro.core.repair import repair_module
from repro.core.rules import CtSel, Load, Store
from repro.fuzz.corpus import load_corpus, replay_case
from repro.fuzz.engine import FuzzReport, run_fuzz, run_one, sample_kind
from repro.fuzz.generators import FuzzConfig
from repro.fuzz.oracles import ORACLES
from repro.ir.values import Var
from repro.obs import OBS, configure


def _buggy_rewrite_store(store, ctx):
    """Fixture copy of :func:`repro.core.rules.rewrite_store` with the
    planted mutation: the ctsel arms are inverted, so the store keeps the
    *old* cell value on live paths — a pure semantics bug the repair
    oracle cannot see statically."""
    current = ctx.fresh("z")
    access = rules.rewrite_load(Load(current, store.array, store.index), ctx)
    instructions = access.instructions
    selected = ctx.fresh("z")
    instructions.append(
        CtSel(selected, ctx.out_cond, access.loaded, store.value)  # swapped
    )
    instructions.append(
        Store(Var(selected), access.safe_array, access.safe_index)
    )
    return instructions


def _buggy_repair(module):
    with mock.patch("repro.core.repair.rewrite_store", _buggy_rewrite_store):
        return repair_module(module)


#: What seed 0 deterministically shrinks to under the planted store bug.
MINIMAL_PLANTED_REPRODUCER = """\
uint fuzz_entry(secret u8 *p1) {
  p1[(0) & 3] = 0;
  return 0;
}
"""


def test_planted_repair_bug_is_caught_minimized_and_stored(tmp_path):
    report = run_fuzz(
        seed=0, iterations=1, repair_fn=_buggy_repair,
        minimize=True, max_minimize_checks=400,
        store=True, corpus_dir=tmp_path,
    )
    assert not report.ok
    [failure] = report.failures
    assert failure.failed == ("semantics",)
    assert failure.minimize_checks > 0
    assert failure.source == MINIMAL_PLANTED_REPRODUCER
    assert failure.case_id.startswith("s0000000000-")

    # The reproducer landed in the corpus and pins the *repair* bug: it
    # still fails when replayed under the buggy rule, and passes under
    # the real pipeline (so it is not a program or oracle artifact).
    [case] = load_corpus(tmp_path)
    assert case.case_id == failure.case_id
    assert "semantics" in replay_case(case, repair_fn=_buggy_repair).failed
    assert replay_case(case).ok


def test_campaigns_are_byte_for_byte_deterministic():
    first = run_fuzz(seed=3, iterations=6, jobs=1, minimize=False)
    second = run_fuzz(seed=3, iterations=6, jobs=1, minimize=False)
    assert first.summary_lines() == second.summary_lines()
    assert first.counters == second.counters


def test_parallel_merge_matches_serial_order():
    serial = run_fuzz(seed=5, iterations=4, jobs=1, minimize=False)
    parallel = run_fuzz(seed=5, iterations=4, jobs=2, minimize=False)
    assert parallel.summary_lines() == serial.summary_lines()


def test_counters_cover_every_oracle():
    report = run_fuzz(seed=3, iterations=6, jobs=1, minimize=False)
    assert report.minic_samples + report.ir_samples == 6
    assert report.ir_samples >= 1  # default ir_fraction=4 schedules some
    for name in ORACLES:
        counter = report.counters[name]
        assert counter["checked"] == 6 - report.invalid_samples
        assert counter["failed"] == 0
    assert report.ok


def test_sample_kind_schedule():
    config = FuzzConfig(ir_fraction=4)
    kinds = [sample_kind(i, config) for i in range(8)]
    assert kinds == ["minic", "minic", "minic", "ir"] * 2
    all_minic = FuzzConfig(ir_fraction=0)
    assert all(
        sample_kind(i, all_minic) == "minic" for i in range(8)
    )


def test_run_one_ir_sample_checks_all_oracles():
    result = run_one(7, "ir", FuzzConfig(), minimize=False)
    assert result["kind"] == "ir"
    assert result["entry"] == "f"
    assert result["checked"] == list(ORACLES)
    assert result["failed"] == []


def test_obs_counters_accumulate_during_campaign():
    configure(enabled=True)
    try:
        run_fuzz(seed=11, iterations=2, jobs=1, minimize=False)
        assert OBS.counters.get("fuzz.samples") == 2
        assert OBS.counters.get("fuzz.failures") == 0
        for name in ORACLES:
            assert OBS.counters.get(f"fuzz.oracle.{name}.checked") == 2
    finally:
        configure(enabled=False)


def test_summary_lines_shape():
    report = FuzzReport(seed=9, iterations=0)
    lines = report.summary_lines()
    assert lines[0] == "fuzz seed=9 iterations=0 (minic=0, ir=0, invalid=0)"
    assert lines[-1] == "failures: 0"
