"""Deterministic job execution and the warm module memo."""

import json

import pytest

from repro.serve import JobSpec, canonical_result_bytes, execute_job
from repro.serve.jobs import (
    WARM_ENV_VAR,
    clear_warm_modules,
    make_verify_inputs,
    prepared_modules,
    warm_module_stats,
)

SOURCE = """
uint gate(secret uint s, uint p) {
  uint y = 0;
  if (s > p) {
    y = 3;
  } else {
    y = 8;
  }
  return y;
}
"""

BROKEN = "uint oops( {"


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_warm_modules()
    yield
    clear_warm_modules()


def test_repair_job_result():
    result = execute_job(JobSpec(kind="repair", source=SOURCE, name="gate"))
    assert result["kind"] == "repair"
    assert "error" not in result
    assert "ctsel" in result["ir"]
    assert result["repaired_instructions"] >= result["original_instructions"]
    assert result["size_ratio"] > 0


def test_verify_job_matches_direct_covenant_check():
    from repro.api import compile_minic
    from repro.verify import check_covenant

    spec = JobSpec(kind="verify", source=SOURCE, name="gate", entry="gate",
                   runs=3, seed=7, array_size=4)
    result = execute_job(spec)
    module = compile_minic(SOURCE, name="gate")
    inputs = make_verify_inputs(module, "gate", 3, 7, 4)
    report = check_covenant(module, "gate", inputs)
    assert result["holds"] == report.holds
    assert result["operation_invariant"] == report.operation_invariant
    assert result["data_invariant"] == report.data_invariant


def test_run_job_result():
    spec = JobSpec(kind="run", source=SOURCE, name="gate", entry="gate",
                   args=(12, 7))
    result = execute_job(spec)
    assert result["value"] == 3
    assert result["violations"] == 0
    assert result["steps"] > 0


def test_certify_job_result():
    result = execute_job(JobSpec(kind="certify", source=SOURCE, name="gate"))
    assert result["kind"] == "certify"
    assert "gate" in result["report"]["functions"]


def test_pipeline_failure_is_a_deterministic_result():
    first = execute_job(JobSpec(kind="repair", source=BROKEN, name="bad"))
    second = execute_job(JobSpec(kind="repair", source=BROKEN, name="bad"))
    assert "error" in first
    assert first == second
    assert canonical_result_bytes(first) == canonical_result_bytes(second)


def test_canonical_bytes_are_stable():
    spec = JobSpec(kind="repair", source=SOURCE, name="gate")
    blob = canonical_result_bytes(execute_job(spec))
    assert blob == canonical_result_bytes(execute_job(spec))
    assert json.loads(blob.decode())["kind"] == "repair"
    assert blob.endswith(b"\n")


def test_warm_memo_hits_on_repeat_submissions():
    spec = JobSpec(kind="repair", source=SOURCE, name="gate")
    execute_job(spec)
    first = warm_module_stats()
    assert first["misses"] == 1
    assert first["entries"] == 1
    execute_job(spec)
    second = warm_module_stats()
    assert second["hits"] >= 1
    assert second["misses"] == 1
    # the memoised module object is the same across jobs (identity-keyed
    # executor caches stay warm because of exactly this)
    module_a, _ = prepared_modules(SOURCE, "gate", False)
    module_b, _ = prepared_modules(SOURCE, "gate", False)
    assert module_a is module_b


def test_warm_memo_is_bounded(monkeypatch):
    monkeypatch.setenv(WARM_ENV_VAR, "2")
    for index in range(4):
        prepared_modules(SOURCE + f"// v{index}\n", "gate", False)
    stats = warm_module_stats()
    assert stats["entries"] == 2
    assert stats["evictions"] == 2
