"""Values, instructions, blocks, functions, modules."""

import pytest

from repro.ir import (
    Alloc,
    BasicBlock,
    BinExpr,
    Br,
    Call,
    Const,
    CtSel,
    Function,
    GlobalArray,
    Jmp,
    Load,
    Module,
    Mov,
    Param,
    Phi,
    Ret,
    Store,
    UnaryExpr,
    Var,
    as_value,
    fresh_name,
)


class TestValues:
    def test_as_value_coercions(self):
        assert as_value(3) == Const(3)
        assert as_value("x") == Var("x")
        assert as_value(True) == Const(1)
        assert as_value(Const(5)) == Const(5)

    def test_as_value_rejects_junk(self):
        with pytest.raises(TypeError):
            as_value(3.14)

    def test_values_are_hashable(self):
        assert len({Const(1), Const(1), Var("a"), Var("a")}) == 2


class TestInstructions:
    def test_mov_uses(self):
        instr = Mov("x", BinExpr("+", Var("a"), Const(1)))
        assert instr.used_vars() == ["a"]
        assert instr.dest == "x"

    def test_replace_uses_substitutes(self):
        instr = Mov("x", BinExpr("+", Var("a"), Var("b")))
        replaced = instr.replace_uses({"a": Const(7)})
        assert replaced == Mov("x", BinExpr("+", Const(7), Var("b")))

    def test_replace_uses_does_not_touch_dest(self):
        instr = Mov("x", Var("x.old"))
        assert instr.replace_uses({"x": Const(0)}).dest == "x"

    def test_load_store_uses(self):
        load = Load("x", Var("arr"), Var("i"))
        assert set(load.used_vars()) == {"arr", "i"}
        store = Store(Var("v"), Var("arr"), Const(0))
        assert store.dest is None
        assert set(store.used_vars()) == {"v", "arr"}

    def test_load_array_must_stay_variable(self):
        load = Load("x", Var("arr"), Const(0))
        with pytest.raises(TypeError):
            load.replace_uses({"arr": Const(0)})

    def test_phi_incoming_lookup(self):
        phi = Phi("x", ((Const(1), "a"), (Var("v"), "b")))
        assert phi.incoming_from("b") == Var("v")
        with pytest.raises(KeyError):
            phi.incoming_from("c")

    def test_ctsel_uses(self):
        sel = CtSel("x", Var("c"), Var("t"), Var("f"))
        assert sel.used_vars() == ["c", "t", "f"]

    def test_call_str_with_and_without_dest(self):
        assert str(Call("x", "f", (Const(1),))) == "x = call @f(1)"
        assert str(Call(None, "f", ())) == "call @f()"

    def test_terminator_successors(self):
        assert Jmp("a").successors() == ["a"]
        assert Br(Var("c"), "a", "b").successors() == ["a", "b"]
        assert Ret(Const(0)).successors() == []

    def test_alloc_size_expression(self):
        alloc = Alloc("buf", BinExpr("*", Var("n"), Const(2)))
        assert alloc.used_vars() == ["n"]


class TestFunction:
    def test_duplicate_block_label_rejected(self):
        function = Function("f")
        function.add_block("entry")
        with pytest.raises(ValueError):
            function.add_block("entry")

    def test_entry_is_first_block(self):
        function = Function("f")
        function.add_block("a")
        function.add_block("b")
        assert function.entry.label == "a"

    def test_instruction_count_includes_terminators(self):
        function = Function("f")
        block = function.add_block("entry")
        block.append(Mov("x", Const(1)))
        block.terminator = Ret(Var("x"))
        assert function.instruction_count() == 2

    def test_param_kind_validation(self):
        with pytest.raises(ValueError):
            Param("p", "float")
        assert Param("p", "ptr").is_pointer

    def test_defined_names_covers_params_and_dests(self):
        function = Function("f", [Param("a", "ptr")])
        block = function.add_block("entry")
        block.append(Mov("x", Const(0)))
        block.terminator = Ret(Const(0))
        assert function.defined_names() == {"a", "x"}

    def test_fresh_name_avoids_collisions(self):
        assert fresh_name("x", {"x", "x.0"}) == "x.1"
        assert fresh_name("y", {"x"}) == "y"


class TestModule:
    def test_global_initializer_padding(self):
        array = GlobalArray("t", 4, (1, 2))
        assert array.initial_contents() == [1, 2, 0, 0]

    def test_global_oversized_initializer_rejected(self):
        with pytest.raises(ValueError):
            GlobalArray("t", 1, (1, 2))

    def test_global_nonpositive_size_rejected(self):
        with pytest.raises(ValueError):
            GlobalArray("t", 0)

    def test_duplicate_function_rejected(self):
        module = Module()
        module.add_function(Function("f"))
        with pytest.raises(ValueError):
            module.add_function(Function("f"))

    def test_missing_function_lookup(self):
        with pytest.raises(KeyError):
            Module().function("nope")

    def test_clone_shares_instructions_but_not_containers(self):
        module = Module()
        function = Function("f")
        block = function.add_block("entry")
        instr = Mov("x", Const(1))
        block.append(instr)
        block.terminator = Ret(Var("x"))
        module.add_function(function)
        module.add_global(GlobalArray("g", 2, (9,)))

        cloned = module.clone()
        cloned.functions["f"].blocks["entry"].instructions.append(
            Mov("y", Const(2))
        )
        assert len(block.instructions) == 1  # original untouched
        assert cloned.functions["f"].blocks["entry"].instructions[0] is instr
        assert cloned.globals["g"].initial_contents() == [9, 0]
