"""The batch backend's machinery: knobs, dedup, chunking, caches, aborts.

The end-to-end guarantee (per-lane results bit-identical to a scalar
loop over all benchmarks) lives in
``tests/integration/test_batch_equivalence.py``; this file pins the parts
of the engine a differential sweep cannot see — environment knobs, the
deduplication and chunking bookkeeping, the fallback/abort counters, the
superblock cache, and backend selection.
"""

import pytest

from repro.exec import (
    BATCH_SIZE_ENV_VAR,
    DEFAULT_BATCH_SIZE,
    TRACE_SPEC_ENV_VAR,
    BatchExecutor,
    CompiledExecutor,
    make_executor,
    resolve_backend,
    run_many,
)
from repro.exec.backend import BACKEND_ENV_VAR
from repro.exec.batch import NUMPY_ENV_VAR, clear_batch_caches, trace_cache_stats
from repro.ir import parse_module
from repro.obs import OBS, configure

SUM_IR = """
func @sum(a: ptr, n: int) {
entry:
  jmp head
head:
  i = phi [0, entry], [i2, body]
  s = phi [0, entry], [s2, body]
  p = mov i < n
  br p, body, done
body:
  x = load a[i]
  s2 = mov s + x
  i2 = mov i + 1
  jmp head
done:
  ret s
}
"""


def _sum_vectors(count=8, width=4):
    return [
        [[(lane * 7 + k) % 97 for k in range(width)], width]
        for lane in range(count)
    ]


def _observe(result):
    return (
        result.value, result.cycles, result.steps, result.trace,
        [str(v) for v in result.violations], result.arrays,
        result.global_state,
    )


class TestKnobs:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv(BATCH_SIZE_ENV_VAR, raising=False)
        monkeypatch.delenv(TRACE_SPEC_ENV_VAR, raising=False)
        executor = BatchExecutor(parse_module(SUM_IR))
        assert executor.batch_size == DEFAULT_BATCH_SIZE
        assert executor.trace_spec is True

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv(BATCH_SIZE_ENV_VAR, "32")
        monkeypatch.setenv(TRACE_SPEC_ENV_VAR, "0")
        executor = BatchExecutor(parse_module(SUM_IR))
        assert executor.batch_size == 32
        assert executor.trace_spec is False

    def test_constructor_beats_env(self, monkeypatch):
        monkeypatch.setenv(BATCH_SIZE_ENV_VAR, "32")
        monkeypatch.setenv(TRACE_SPEC_ENV_VAR, "0")
        executor = BatchExecutor(
            parse_module(SUM_IR), batch_size=4, trace_spec=True,
        )
        assert executor.batch_size == 4
        assert executor.trace_spec is True

    def test_bad_batch_size_rejected(self, monkeypatch):
        monkeypatch.setenv(BATCH_SIZE_ENV_VAR, "zero")
        with pytest.raises(ValueError, match=BATCH_SIZE_ENV_VAR):
            BatchExecutor(parse_module(SUM_IR))
        monkeypatch.setenv(BATCH_SIZE_ENV_VAR, "-3")
        with pytest.raises(ValueError, match=BATCH_SIZE_ENV_VAR):
            BatchExecutor(parse_module(SUM_IR))

    def test_numpy_knob_still_exact(self, monkeypatch):
        monkeypatch.setenv(NUMPY_ENV_VAR, "0")
        module = parse_module(SUM_IR)
        executor = BatchExecutor(module)
        assert executor.np is None
        scalar = CompiledExecutor(module)
        vectors = _sum_vectors()
        got = executor.run_batch("sum", vectors)
        ref = [scalar.run("sum", [list(v[0]), v[1]]) for v in vectors]
        assert [_observe(g) for g in got] == [_observe(r) for r in ref]


class TestBatchAPI:
    def test_empty_batch(self):
        assert BatchExecutor(parse_module(SUM_IR)).run_batch("sum", []) == []

    def test_scalar_run_delegates(self):
        module = parse_module(SUM_IR)
        ref = CompiledExecutor(module).run("sum", [[1, 2, 3], 3])
        got = BatchExecutor(module).run("sum", [[1, 2, 3], 3])
        assert _observe(got) == _observe(ref)

    def test_input_vectors_are_not_mutated(self):
        vectors = _sum_vectors()
        snapshot = [[list(a) if isinstance(a, list) else a for a in v]
                    for v in vectors]
        BatchExecutor(parse_module(SUM_IR)).run_batch("sum", vectors)
        assert vectors == snapshot

    def test_run_many_loops_on_scalar_backends(self):
        module = parse_module(SUM_IR)
        vectors = _sum_vectors(count=3)
        for backend in ("interp", "compiled", "batch"):
            executor = make_executor(module, backend=backend)
            results = run_many(executor, "sum", vectors)
            assert [r.value for r in results] == [
                sum(v[0]) for v in vectors
            ]

    def test_chunking_covers_all_lanes(self):
        module = parse_module(SUM_IR)
        executor = BatchExecutor(module, batch_size=3)
        vectors = _sum_vectors(count=10)
        got = executor.run_batch("sum", vectors)
        assert [g.value for g in got] == [sum(v[0]) for v in vectors]

    def test_duplicate_lanes_share_one_execution(self):
        module = parse_module(SUM_IR)
        executor = BatchExecutor(module)
        vectors = [[[5, 6], 2], [[7, 8], 2], [[5, 6], 2], [[5, 6], 2]]
        configure(enabled=True)
        try:
            OBS.counters.pop("exec.batch.dedup", None)
            got = executor.run_batch("sum", vectors)
            assert OBS.counters.get("exec.batch.dedup") == 2
        finally:
            configure(enabled=False)
        assert [g.value for g in got] == [11, 15, 11, 11]
        # Deduplicated results are fresh containers, not shared objects.
        assert got[0].trace is not got[2].trace
        assert got[0].arrays[0] is not got[2].arrays[0]
        assert _observe(got[0]) == _observe(got[2]) == _observe(got[3])

    def test_pointer_arguments_fall_back_to_scalar(self):
        """Unsupported argument shapes bypass lock-step entirely — whatever
        the scalar backend does with them (here: raise) happens verbatim."""
        module = parse_module(SUM_IR)
        scalar = CompiledExecutor(module)
        executor = BatchExecutor(module)
        from repro.exec import Memory

        memory = Memory()
        pointer = memory.allocate("shared", 2, [3, 4])
        with pytest.raises(Exception) as ref:
            for _ in range(2):
                scalar.run("sum", [pointer, 2])
        configure(enabled=True)
        try:
            OBS.counters.pop("exec.batch.fallback", None)
            with pytest.raises(Exception) as got:
                executor.run_batch("sum", [[pointer, 2], [pointer, 2]])
            assert OBS.counters.get("exec.batch.fallback") == 1
        finally:
            configure(enabled=False)
        assert type(got.value) is type(ref.value)
        assert str(got.value) == str(ref.value)

    def test_cache_mode_falls_back_to_scalar(self):
        from repro.cache import CacheHierarchy

        module = parse_module(SUM_IR)
        executor = BatchExecutor(
            module, record_trace=False, cache=CacheHierarchy(),
        )
        got = executor.run_batch("sum", _sum_vectors(count=2))
        assert [g.value for g in got] == [
            sum(v[0]) for v in _sum_vectors(count=2)
        ]


class TestErrorParity:
    def test_lane_errors_surface_in_lane_order(self):
        module = parse_module(SUM_IR)
        scalar = CompiledExecutor(module, strict_memory=True)
        batch = BatchExecutor(module, strict_memory=True)
        # Lane 2 reads out of bounds (n exceeds the array) and must raise
        # the same error the scalar loop raises at that lane.
        vectors = [[[1, 2], 2], [[3, 4], 2], [[5, 6], 3], [[7, 8], 9]]
        with pytest.raises(Exception) as ref:
            for v in vectors:
                scalar.run("sum", [list(v[0]), v[1]])
        with pytest.raises(Exception) as got:
            batch.run_batch("sum", vectors)
        assert type(got.value) is type(ref.value)
        assert str(got.value) == str(ref.value)

    def test_step_limit_parity(self):
        module = parse_module(SUM_IR)
        scalar = CompiledExecutor(module, max_steps=30)
        batch = BatchExecutor(module, max_steps=30)
        vectors = _sum_vectors(count=3, width=8)
        with pytest.raises(Exception) as ref:
            for v in vectors:
                scalar.run("sum", [list(v[0]), v[1]])
        with pytest.raises(Exception) as got:
            batch.run_batch("sum", vectors)
        assert type(got.value) is type(ref.value)
        assert str(got.value) == str(ref.value)


class TestTraceProgramCache:
    def test_superblock_is_cached_per_module_and_sequence(self):
        clear_batch_caches()
        module = parse_module(SUM_IR)
        executor = BatchExecutor(module, batch_size=4, trace_spec=True)
        vectors = _sum_vectors(count=12)
        executor.run_batch("sum", vectors)
        stats = trace_cache_stats()
        # Same block sequence in every chunk: one build, then hits.
        assert stats["misses"] == 1
        assert stats["hits"] == 2
        assert stats["entries"] == 1
        clear_batch_caches()
        assert trace_cache_stats()["entries"] == 0


class TestBackendSelection:
    def test_batch_is_a_registered_backend(self):
        module = parse_module(SUM_IR)
        executor = make_executor(module, backend="batch")
        assert isinstance(executor, BatchExecutor)
        assert executor.run("sum", [[2, 3], 2]).value == 5

    def test_env_var_selects_batch(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "batch")
        assert resolve_backend(None) == "batch"
        module = parse_module(SUM_IR)
        assert isinstance(make_executor(module), BatchExecutor)

    def test_unknown_env_backend_raises_at_make_executor(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "turbo")
        module = parse_module(SUM_IR)
        with pytest.raises(ValueError) as info:
            make_executor(module)
        message = str(info.value)
        assert "turbo" in message
        for name in ("interp", "compiled", "batch"):
            assert name in message
