"""Textual IR parser and printer."""

import pytest

from repro.ir import (
    Const,
    IRSyntaxError,
    UnaryExpr,
    Var,
    module_to_str,
    parse_function,
    parse_module,
)
from repro.ir.instructions import BinExpr, Mov


def roundtrip(text: str) -> None:
    module = parse_module(text)
    printed = module_to_str(module)
    assert module_to_str(parse_module(printed)) == printed


class TestRoundTrips:
    def test_minimal_function(self):
        roundtrip("func @f() { entry: ret 0 }")

    def test_all_instructions(self):
        roundtrip("""
        const global @tab[4] = [1, 2, 3, 4]
        global @buf[8]
        func @f(a: ptr, n: int) {
        entry:
          t = alloc 4
          x = mov n + 1
          y = load a[x]
          store y, t[0]
          s = ctsel x, y, 0
          c = call @g(a, s)
          br c, then, done
        then:
          jmp done
        done:
          p = phi [s, entry], [c, then]
          ret p
        }
        func @g(a: ptr, v: int) {
        entry:
          ret v
        }
        """)

    def test_guard_select_round_trips(self):
        # The repair pass's guard marker must survive the text round-trip
        # (the artifact cache stores repaired modules as IR text).
        function = parse_function("""
        func @f(a: ptr, i: int, c: int) {
        entry:
          s = ctsel c, i, 0, guard
          t = ctsel c, i, 0
          ret s
        }
        """)
        guarded, plain = function.entry.instructions
        assert guarded.guard and not plain.guard
        assert str(guarded).endswith(", guard")
        roundtrip("""
        func @f(a: ptr, i: int, c: int) {
        entry:
          s = ctsel c, i, 0, guard
          ret s
        }
        """)

    def test_negative_literals(self):
        module = parse_function("func @f() { entry: x = mov -5 ret x }")
        instr = module.entry.instructions[0]
        assert instr == Mov("x", Const(-5))

    def test_unary_minus_on_variable(self):
        function = parse_function(
            "func @f(v: int) { entry: x = mov - v ret x }"
        )
        assert function.entry.instructions[0] == Mov("x", UnaryExpr("-", Var("v")))

    def test_subtraction_not_negative_literal(self):
        function = parse_function(
            "func @f(v: int) { entry: x = mov v -5 ret x }"
        )
        assert function.entry.instructions[0] == Mov(
            "x", BinExpr("-", Var("v"), Const(5))
        )

    def test_comments_ignored(self):
        roundtrip("""
        ; leading comment
        func @f() {  # trailing comment style
        entry:
          ret 0   ; done
        }
        """)

    def test_all_binary_operators(self):
        for op in ("+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
                   "==", "!=", "<", "<=", ">", ">="):
            function = parse_function(
                f"func @f(a: int, b: int) {{ entry: x = mov a {op} b ret x }}"
            )
            assert function.entry.instructions[0] == Mov(
                "x", BinExpr(op, Var("a"), Var("b"))
            )


class TestErrors:
    def test_missing_terminator(self):
        with pytest.raises(IRSyntaxError):
            parse_module("func @f() { entry: x = mov 1 }")

    def test_unknown_instruction(self):
        with pytest.raises(IRSyntaxError):
            parse_module("func @f() { entry: x = frobnicate 1 ret x }")

    def test_duplicate_global(self):
        with pytest.raises(ValueError):
            parse_module("global @g[1] global @g[1]")

    def test_bad_param_kind(self):
        with pytest.raises(IRSyntaxError):
            parse_module("func @f(a: float) { entry: ret 0 }")

    def test_unexpected_character(self):
        with pytest.raises(IRSyntaxError):
            parse_module("func @f() { entry: ret $ }")

    def test_error_carries_line_number(self):
        with pytest.raises(IRSyntaxError) as excinfo:
            parse_module("func @f() {\nentry:\n  x = bogus 1\n  ret 0\n}")
        assert excinfo.value.line == 3

    def test_parse_function_rejects_multiple(self):
        with pytest.raises(ValueError):
            parse_function(
                "func @f() { entry: ret 0 } func @g() { entry: ret 0 }"
            )
