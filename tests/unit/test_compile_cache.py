"""The module-level compile cache: identity keying, option keying, and
staleness — a rebuilt module must never be served another module's code."""

import gc

import pytest

from repro.exec import (
    CompiledExecutor,
    clear_compile_cache,
    compile_cache_stats,
    get_compiled,
)
from repro.exec.costs import DEFAULT_COST_MODEL
from repro.ir import parse_module

TEXT = "func @f(a: int) { entry: x = mov a + 1 ret x }"


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_compile_cache()
    yield
    clear_compile_cache()


class TestKeying:
    def test_same_module_hits(self):
        module = parse_module(TEXT)
        first = get_compiled(module, False, False, DEFAULT_COST_MODEL)
        second = get_compiled(module, False, False, DEFAULT_COST_MODEL)
        assert first is second
        stats = compile_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_identity_not_name(self):
        # Two distinct modules with identical text (and name) compile
        # separately: the cache must key on the object, not the name.
        module_a = parse_module(TEXT)
        module_b = parse_module(TEXT)
        assert module_a.name == module_b.name
        compiled_a = get_compiled(module_a, False, False, DEFAULT_COST_MODEL)
        compiled_b = get_compiled(module_b, False, False, DEFAULT_COST_MODEL)
        assert compiled_a is not compiled_b
        assert compile_cache_stats()["misses"] == 2

    def test_options_compile_separately(self):
        module = parse_module(TEXT)
        plain = get_compiled(module, False, False, DEFAULT_COST_MODEL)
        tracing = get_compiled(module, True, False, DEFAULT_COST_MODEL)
        caching = get_compiled(module, False, True, DEFAULT_COST_MODEL)
        assert plain is not tracing
        assert plain is not caching
        assert compile_cache_stats() == {
            "hits": 0, "misses": 3, "evictions": 0, "entries": 1,
        }

    def test_executors_share_compilation(self):
        module = parse_module(TEXT)
        a = CompiledExecutor(module, record_trace=False)
        b = CompiledExecutor(module, record_trace=False)
        assert a._compiled is b._compiled


class TestStaleness:
    def test_repair_then_optimize_then_rerun(self):
        """The bench/runner lifecycle: each transformation yields a new
        module object and therefore a fresh compilation of the same-named
        function — never the stale original code."""
        from repro.core import repair_module
        from repro.opt import optimize
        from repro.verify import adapt_inputs

        source = """
        func @f(a: ptr, c: int) {
        entry:
          x = load a[0]
          br c, yes, done
        yes:
          y = mov x * 2
          store y, a[0]
          jmp done
        done:
          r = phi [x, entry], [0, yes]
          ret r
        }
        """
        original = parse_module(source)
        ran = CompiledExecutor(
            original, record_trace=False
        ).run("f", [[21], 1])
        assert ran.arrays[0] == [42]

        repaired = repair_module(original)
        optimized = optimize(repaired)
        inputs = adapt_inputs(original, "f", [[[21], 1]])
        for module in (repaired, optimized):
            result = CompiledExecutor(
                module, record_trace=False, strict_memory=False
            ).run("f", list(inputs[0]))
            assert result.arrays[0] == [42], (
                "stale compilation served for a rebuilt module"
            )
        # Three distinct module objects, three distinct compilations.
        assert compile_cache_stats()["misses"] == 3

    def test_mutating_rebuild_of_same_name(self):
        module = parse_module(TEXT)
        assert CompiledExecutor(
            module, record_trace=False
        ).run("f", [1]).value == 2
        rebuilt = parse_module(
            "func @f(a: int) { entry: x = mov a + 100 ret x }"
        )
        assert CompiledExecutor(
            rebuilt, record_trace=False
        ).run("f", [1]).value == 101


class TestLifecycle:
    def test_entries_evicted_when_module_dies(self):
        module = parse_module(TEXT)
        get_compiled(module, False, False, DEFAULT_COST_MODEL)
        assert compile_cache_stats()["entries"] == 1
        del module
        gc.collect()
        assert compile_cache_stats()["entries"] == 0

    def test_clear_resets_everything(self):
        module = parse_module(TEXT)
        get_compiled(module, False, False, DEFAULT_COST_MODEL)
        clear_compile_cache()
        assert compile_cache_stats() == {"hits": 0, "misses": 0, "evictions": 0, "entries": 0}
