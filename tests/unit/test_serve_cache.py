"""The sharded result cache and the artifact store's shard knob."""

import pytest

from repro.artifacts.store import (
    DEFAULT_SHARD_WIDTH,
    SHARD_ENV_VAR,
    ArtifactStore,
    shard_width_from_env,
)
from repro.serve.cache import ResultCache, default_result_cache


def test_shard_width_env_knob(monkeypatch):
    monkeypatch.delenv(SHARD_ENV_VAR, raising=False)
    assert shard_width_from_env() == DEFAULT_SHARD_WIDTH
    monkeypatch.setenv(SHARD_ENV_VAR, "3")
    assert shard_width_from_env() == 3
    monkeypatch.setenv(SHARD_ENV_VAR, "99")
    assert shard_width_from_env() == 8  # clamped
    monkeypatch.setenv(SHARD_ENV_VAR, "junk")
    assert shard_width_from_env() == DEFAULT_SHARD_WIDTH


def test_result_cache_layout_and_round_trip(tmp_path):
    cache = ResultCache(tmp_path / "serve", shard_width=2)
    key = "ab" + "0" * 62
    assert cache.get(key) is None
    cache.put(key, b'{"x":1}\n')
    assert cache.get(key) == b'{"x":1}\n'
    assert (tmp_path / "serve" / "ab" / f"{key}.json").is_file()


def test_result_cache_unsharded_mode(tmp_path):
    cache = ResultCache(tmp_path, shard_width=0)
    key = "cd" + "1" * 62
    cache.put(key, b"data\n")
    assert (tmp_path / "_" / f"{key}.json").is_file()
    assert cache.get(key) == b"data\n"


def test_result_cache_stats(tmp_path):
    cache = ResultCache(tmp_path, shard_width=1)
    for prefix in ("a", "a", "b", "c"):
        for index in range(2 if prefix == "a" else 1):
            cache.put(prefix + f"{index}" + "0" * 62, b"x\n")
    stats = cache.stats()
    assert stats["shard_width"] == 1
    assert stats["entries"] == 4
    assert stats["shards"] == 3
    assert stats["hottest_shard"] == "a"
    assert stats["per_shard"]["a"] == 2


def test_result_cache_tolerates_unwritable_root(tmp_path):
    blocked = tmp_path / "file-not-dir"
    blocked.write_text("x")
    cache = ResultCache(blocked / "nested")
    cache.put("ee" + "0" * 62, b"x\n")  # must not raise
    assert cache.get("ee" + "0" * 62) is None


def test_default_result_cache_env_gates(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert default_result_cache().root == tmp_path / "serve"
    monkeypatch.setenv("REPRO_SERVE_CACHE", "0")
    assert default_result_cache() is None
    monkeypatch.delenv("REPRO_SERVE_CACHE")
    monkeypatch.setenv("REPRO_CACHE", "0")
    assert default_result_cache() is None


def test_artifact_store_shard_stats(tmp_path, monkeypatch):
    from repro.artifacts.keys import cache_key

    store = ArtifactStore(tmp_path, shard_width=2)
    key = cache_key("uint f(uint x) { return x; }", {"t": 1})
    assert store.shard_of(key) == key[:2]
    assert store._entry_dir(key) == tmp_path / key[:2] / key
    empty = store.shard_stats()
    assert empty["entries"] == 0
    assert empty["hottest_shard"] is None


def test_artifact_store_unsharded(tmp_path):
    store = ArtifactStore(tmp_path, shard_width=0)
    assert store.shard_of("ab" + "0" * 62) == "_"
