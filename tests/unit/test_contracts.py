"""Contract/interface construction (paper Definition 2, Section III-C1)."""

from repro.core import build_contract, build_signature_map, called_function_names
from repro.ir import Function, Param, parse_module


class TestBuildContract:
    def test_length_follows_its_pointer(self):
        function = Function("f", [
            Param("a", "ptr"), Param("x", "int"), Param("b", "ptr"),
        ])
        contract = build_contract(function, needs_cond=False)
        assert [p.name for p in contract.new_params] == [
            "a", "a_n", "x", "b", "b_n",
        ]
        assert contract.length_params == {"a": "a_n", "b": "b_n"}
        assert contract.cond_param is None

    def test_cond_param_appended_last(self):
        function = Function("f", [Param("a", "ptr")])
        contract = build_contract(function, needs_cond=True)
        assert contract.new_params[-1].name == "__cond"
        assert contract.cond_param == "__cond"

    def test_name_collisions_avoided(self):
        function = Function("f", [
            Param("a", "ptr"), Param("a_n", "int"),
        ])
        contract = build_contract(function, needs_cond=False)
        generated = contract.length_params["a"]
        assert generated != "a_n"
        assert len({p.name for p in contract.new_params}) == len(
            contract.new_params
        )

    def test_pointerless_function_unchanged_modulo_cond(self):
        function = Function("f", [Param("x", "int")])
        contract = build_contract(function, needs_cond=False)
        assert contract.new_params == (Param("x", "int"),)


class TestSignatureMap:
    MODULE = """
    func @leaf(a: ptr) { entry: ret 0 }
    func @top(a: ptr) {
    entry:
      x = call @leaf(a)
      ret x
    }
    """

    def test_called_functions_detected(self):
        module = parse_module(self.MODULE)
        assert called_function_names(module) == {"leaf"}

    def test_only_callees_get_cond(self):
        module = parse_module(self.MODULE)
        signatures = build_signature_map(module)
        assert signatures["leaf"].cond_param is not None
        assert signatures["top"].cond_param is None

    def test_force_cond_everywhere(self):
        module = parse_module(self.MODULE)
        signatures = build_signature_map(module, force_cond=True)
        assert all(c.cond_param for c in signatures.values())

    def test_describe_renders_signature(self):
        module = parse_module(self.MODULE)
        signatures = build_signature_map(module)
        assert signatures["leaf"].describe() == (
            "@leaf(a: ptr, a_n: int, __cond: int)"
        )
