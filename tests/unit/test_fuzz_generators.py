"""The seeded MiniC/IR generators behind ``lif fuzz``.

The validity sweep is the satellite acceptance check: 500 seeded samples
must parse, compile (including full unrolling) and pass ``diagnose_module``
with no findings — a generator that emits invalid programs would poison
every oracle downstream.
"""

from repro.fuzz.generators import (
    FuzzConfig,
    generate_inputs,
    generate_program,
    ir_module_inputs,
    random_ir_module,
    secret_family,
)
from repro.fuzz.oracles import compile_sample
from repro.fuzz.spec import ForS, render_program
from repro.ir import module_to_str
from repro.ir.validate import diagnose_module

VALIDITY_SAMPLES = 500


def test_500_samples_compile_and_diagnose_clean():
    invalid = []
    for seed in range(VALIDITY_SAMPLES):
        source = render_program(generate_program(seed))
        module = compile_sample(source, name=f"sample_{seed}")
        findings = list(diagnose_module(module))
        if findings:
            invalid.append((seed, [f.rule for f in findings]))
    assert not invalid, f"generator emitted invalid programs: {invalid[:5]}"


def test_generation_is_deterministic():
    for seed in (0, 7, 123456):
        first = render_program(generate_program(seed))
        second = render_program(generate_program(seed))
        assert first == second
    assert render_program(generate_program(1)) != render_program(
        generate_program(2)
    )


def test_config_round_trips_through_dict():
    config = FuzzConfig(max_helpers=0, array_sizes=(2,), allow_loops=False)
    assert FuzzConfig.from_dict(config.as_dict()) == config


def _walk_stmts(body):
    for stmt in body:
        yield stmt
        for attr in ("then_body", "else_body", "body"):
            inner = getattr(stmt, attr, None)
            if inner:
                yield from _walk_stmts(inner)


def test_feature_knobs_disable_features():
    config = FuzzConfig(allow_loops=False, allow_calls=False, max_helpers=0)
    for seed in range(40):
        spec = generate_program(seed, config)
        assert len(spec.functions) == 1
        for func in spec.functions:
            for stmt in _walk_stmts(func.body):
                assert not isinstance(stmt, ForS)
        source = render_program(spec)
        assert "for (" not in source
        assert "helper" not in source


def test_generated_programs_have_nesting_and_loops_somewhere():
    # Not every sample, but across a window the interesting constructs
    # (branch nesting, loops, calls) must all appear — a generator that
    # silently stopped emitting them would shrink fuzz coverage.
    sources = [render_program(generate_program(seed)) for seed in range(60)]
    assert any("if (" in s for s in sources)
    assert any("for (" in s for s in sources)
    assert any("helper0(" in s for s in sources)
    assert any("secret" in s for s in sources)


def test_inputs_match_signature_and_secret_variants():
    for seed in (3, 11, 27):
        spec = generate_program(seed)
        params = spec.entry_func.params
        vectors = generate_inputs(spec, seed, runs=3, secret_variants=2)
        assert len(vectors) == 5
        for vector in vectors:
            assert len(vector) == len(params)
            for value, param in zip(vector, params):
                if param.pointer:
                    assert isinstance(value, list)
                    assert len(value) == param.size
                else:
                    assert isinstance(value, int)
        base = vectors[0]
        for variant in vectors[3:]:
            for value, base_value, param in zip(variant, base, params):
                if not param.secret:
                    assert value == base_value
        assert generate_inputs(spec, seed) == generate_inputs(spec, seed)


def test_secret_family_selects_base_plus_variants():
    vectors = [[0], [1], [2], [90], [91]]
    assert secret_family(vectors, runs=3) == [[0], [90], [91]]
    # Degenerate campaigns (fewer vectors than runs) keep everything.
    assert secret_family([[5]], runs=3) == [[5]]


def test_ir_generator_is_deterministic_and_valid():
    for seed in range(60):
        module = random_ir_module(seed)
        again = random_ir_module(seed)
        assert module_to_str(module) == module_to_str(again)
        findings = [
            d for d in diagnose_module(module) if d.severity == "error"
        ]
        assert not findings, (seed, [f.rule for f in findings])


def test_ir_inputs_match_signature():
    vectors = ir_module_inputs(9)
    assert len(vectors) >= 2
    for array, x, y in vectors:
        assert isinstance(array, list) and len(array) == 4
        assert isinstance(x, int) and isinstance(y, int)
    assert ir_module_inputs(9) == ir_module_inputs(9)
