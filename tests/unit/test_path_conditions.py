"""Path-condition analysis — reproduces the paper's Fig. 5 example."""

import pytest

from repro.analysis import Formula, compute_path_conditions
from repro.analysis.path_conditions import BranchAtom
from repro.ir import parse_function

from tests.conftest import OFDF_IR


class TestFormulaAlgebra:
    def test_true_false_identities(self):
        assert Formula.true().is_true()
        assert Formula.false().is_false()
        assert str(Formula.true()) == "true"
        assert str(Formula.false()) == "false"

    def test_atom_rendering(self):
        assert str(Formula.atom("p")) == "p"
        assert str(Formula.atom("p", negated=True)) == "!p"

    def test_conjoin_contradiction_drops_term(self):
        formula = Formula.atom("p").conjoin_atom(BranchAtom("p", negated=True))
        assert formula.is_false()

    def test_conjoin_absorbs_duplicates(self):
        formula = Formula.atom("p").conjoin_atom(BranchAtom("p"))
        assert str(formula) == "p"

    def test_disjoin_with_true_is_true(self):
        assert Formula.atom("p").disjoin(Formula.true()).is_true()

    def test_disjoin_accumulates_terms(self):
        formula = Formula.atom("p").disjoin(Formula.atom("q"))
        assert str(formula) == "p | q"

    def test_atoms_collection(self):
        formula = Formula.atom("p").disjoin(
            Formula.atom("q").conjoin_atom(BranchAtom("r", True))
        )
        assert formula.atoms() == {"p", "q", "r"}


class TestFig5Example:
    """The paper's Fig. 5: incoming/outgoing conditions of unrolled oFdF."""

    @pytest.fixture
    def conditions(self, ofdf_module):
        return compute_path_conditions(ofdf_module.function("ofdf"))

    def test_entry_is_unconditional(self, conditions):
        assert conditions.outgoing["l0"].is_true()

    def test_second_iteration_requires_not_p0(self, conditions):
        assert str(conditions.outgoing["l1"]) == "!p0"

    def test_success_block_requires_both_equal(self, conditions):
        # Fig. 5: jmp(l3) runs when p0 and p1 are both false.
        assert str(conditions.outgoing["l3"]) == "!p0 & !p1"

    def test_failure_block_union_of_exits(self, conditions):
        # l4 is reached from l0 (p0) or from l1 (!p0 & p1).
        assert str(conditions.outgoing["l4"]) == "!p0 & p1 | p0"

    def test_exit_block_always_executes(self, conditions):
        # The disjunction of all paths into l5 is a tautology; the analysis
        # keeps it in DNF rather than proving it, so check the term set.
        out = conditions.outgoing["l5"]
        assert str(out) == "!p0 & !p1 | !p0 & p1 | p0"

    def test_incoming_conditions_per_edge(self, conditions):
        incoming = conditions.incoming["l5"]
        assert str(incoming["l3"]) == "!p0 & !p1"
        assert str(incoming["l4"]) == "!p0 & p1 | p0"


class TestEdgeCases:
    def test_branch_with_equal_targets(self):
        function = parse_function("""
        func @f(c: int) {
        entry:
          br c, next, next
        next:
          ret 0
        }
        """)
        conditions = compute_path_conditions(function)
        assert conditions.outgoing["next"].is_true()

    def test_constant_predicate_uses_its_text(self):
        function = parse_function("""
        func @f() {
        entry:
          br 1, a, b
        a:
          jmp b
        b:
          ret 0
        }
        """)
        conditions = compute_path_conditions(function)
        assert "1" in conditions.outgoing["a"].atoms()

    def test_cyclic_function_rejected(self):
        function = parse_function("""
        func @f(c: int) {
        entry:
          jmp head
        head:
          br c, head, done
        done:
          ret 0
        }
        """)
        with pytest.raises(ValueError):
            compute_path_conditions(function)
