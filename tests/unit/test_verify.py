"""Verification layer: invariance checks, covenant, cache invariance."""

from repro.core import repair_module
from repro.ir import parse_module
from repro.verify import (
    adapt_inputs,
    check_cache_invariance,
    check_covenant,
    check_invariance,
    compare_semantics,
)

LEAKY = """
func @f(k: int, a: ptr) {
entry:
  p = mov k == 0
  br p, fast, slow
fast:
  jmp done
slow:
  x0 = load a[0]
  x1 = load a[1]
  t = mov x0 + x1
  jmp done
done:
  r = phi [0, fast], [t, slow]
  ret r
}
"""


class TestCheckInvariance:
    def test_leaky_function_flagged(self):
        module = parse_module(LEAKY)
        report = check_invariance(module, "f", [[0, [1, 2]], [5, [1, 2]]])
        assert not report.operation_invariant
        assert not report.data_invariant
        assert not report.isochronous
        assert report.runs == 2

    def test_repaired_function_clean(self):
        module = parse_module(LEAKY)
        repaired = repair_module(module)
        inputs = adapt_inputs(module, "f", [[0, [1, 2]], [5, [3, 4]]])
        report = check_invariance(repaired, "f", inputs)
        assert report.isochronous
        assert report.memory_safe
        assert len(set(report.cycles)) == 1  # constant simulated time

    def test_violations_surface_in_report(self):
        module = parse_module("""
        func @f(a: ptr) {
        entry:
          x = load a[5]
          ret x
        }
        """)
        report = check_invariance(module, "f", [[[1]]])
        assert not report.memory_safe
        assert report.violations

    def test_data_consistent_but_not_invariant(self):
        # Same set of addresses, different order.
        module = parse_module("""
        func @f(a: ptr, c: int) {
        entry:
          br c, fwd, bwd
        fwd:
          x0 = load a[0]
          x1 = load a[1]
          jmp done
        bwd:
          y1 = load a[1]
          y0 = load a[0]
          jmp done
        done:
          r = phi [x0, fwd], [y0, bwd]
          ret r
        }
        """)
        report = check_invariance(module, "f", [[[7, 8], 1], [[7, 8], 0]])
        assert report.data_consistent
        assert not report.data_invariant


class TestCompareSemantics:
    def test_matching_functions(self):
        module = parse_module(LEAKY)
        repaired = repair_module(module)
        inputs = [[0, [1, 2]], [9, [4, 5]]]
        adapted = adapt_inputs(module, "f", inputs)
        assert compare_semantics(module, repaired, "f", inputs, adapted)

    def test_detects_divergence(self):
        module_a = parse_module("func @f(x: int) { entry: ret x }")
        module_b = parse_module("func @f(x: int) { entry: ret x + 1 }")
        assert not compare_semantics(
            module_a, module_b, "f", [[3]], [[3]]
        )

    def test_detects_array_divergence(self):
        module_a = parse_module("""
        func @f(a: ptr) { entry: store 1, a[0] ret 0 }
        """)
        module_b = parse_module("""
        func @f(a: ptr) { entry: store 2, a[0] ret 0 }
        """)
        assert not compare_semantics(
            module_a, module_b, "f", [[[0]]], [[[0]]]
        )


class TestAdaptInputs:
    def test_lengths_inserted_after_pointers(self):
        module = parse_module("""
        func @f(a: ptr, n: int, b: ptr) { entry: ret n }
        """)
        adapted = adapt_inputs(module, "f", [[[1, 2, 3], 7, [4]]])
        assert adapted == [[[1, 2, 3], 3, 7, [4], 1]]

    def test_cond_appended_for_called_functions(self):
        module = parse_module("""
        func @g(a: ptr) { entry: ret 0 }
        func @f(a: ptr) {
        entry:
          x = call @g(a)
          ret x
        }
        """)
        adapted = adapt_inputs(module, "g", [[[1]]], cond=1)
        assert adapted == [[[1], 1, 1]]


class TestCovenant:
    def test_holds_for_repairable_program(self):
        module = parse_module(LEAKY)
        report = check_covenant(module, "f", [[0, [1, 2]], [3, [4, 5]]])
        assert report.holds
        assert report.semantics_preserved
        assert report.operation_invariant
        assert report.memory_safe

    def test_data_invariance_not_required_when_inherent(self):
        module = parse_module("""
        func @f(a: ptr, i: int) {
        entry:
          x = load a[i]
          ret x
        }
        """)
        report = check_covenant(module, "f", [[[1, 2, 3], 0], [[1, 2, 3], 2]])
        assert report.inherently_data_inconsistent
        assert not report.predicted_data_invariant
        assert report.holds  # clauses 1 and 2 suffice


class TestCacheInvariance:
    def test_repaired_program_cache_invariant(self):
        module = parse_module(LEAKY)
        repaired = repair_module(module)
        inputs = adapt_inputs(module, "f", [[0, [1, 2]], [5, [9, 9]]])
        report = check_cache_invariance(repaired, "f", inputs)
        assert report.cache_invariant

    def test_original_program_cache_variant(self):
        module = parse_module(LEAKY)
        report = check_cache_invariance(module, "f", [[0, [1, 2]], [5, [1, 2]]])
        assert not report.cache_invariant
