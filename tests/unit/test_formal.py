"""The executable formalisation (Appendix A / Fig. 17)."""

import pytest

from repro.core import repair_module
from repro.formal import EPSILON, RewritingSystem, derive_function
from repro.ir import parse_module

from tests.conftest import OFDF_IR


def flatten_production(module, name):
    """The production repairer's output as a flat instruction list."""
    rendered = []
    for block in module.function(name).blocks.values():
        rendered.extend(str(i) for i in block.instructions)
        rendered.append(str(block.terminator))
    return rendered


class TestDerivation:
    @pytest.fixture
    def derivation(self, ofdf_module):
        return derive_function(ofdf_module, "ofdf")

    def test_reaches_final_configuration(self, derivation):
        assert derivation.final.is_final()
        assert derivation.final.label == EPSILON
        assert derivation.final.remaining == 0

    def test_one_step_per_source_instruction(self, derivation, ofdf_module):
        source_size = ofdf_module.function("ofdf").instruction_count()
        assert len(derivation.steps) == source_size

    def test_rule_trace_shape(self, derivation):
        rules = derivation.rules_applied()
        assert rules[-1] == "exit"
        assert rules.count("exit") == 1
        # Every non-final terminator is a [flow] application.
        assert rules.count("flow") == 4  # br(l0), br(l1), jmp(l3), jmp(l4)

    def test_remaining_count_decreases_monotonically(self, derivation):
        counts = [step.configuration.remaining for step in derivation.steps]
        assert counts == sorted(counts, reverse=True)
        assert counts[-1] == 0

    def test_produced_program_grows_monotonically(self, derivation):
        sizes = [len(step.configuration.produced)
                 for step in derivation.steps]
        assert sizes == sorted(sizes)

    def test_render_is_readable(self, derivation):
        text = derivation.render()
        assert "[inst]" in text and "[exit]" in text


class TestAgreementWithProduction:
    """The formal system IS the production algorithm, with bookkeeping."""

    def check_agreement(self, text: str, name: str):
        module = parse_module(text)
        derivation = derive_function(module, name)
        production = flatten_production(repair_module(module), name)
        formal = [str(i) for i in derivation.produced_instructions()]
        assert formal == production

    def test_ofdf(self):
        self.check_agreement(OFDF_IR, "ofdf")

    def test_straight_line_memory(self):
        self.check_agreement("""
        func @f(a: ptr) {
        entry:
          x = load a[0]
          y = mov x * 2
          store y, a[1]
          ret y
        }
        """, "f")

    def test_multiarm_merge(self):
        self.check_agreement("""
        func @f(c: int, d: int) {
        entry:
          br c, a, b
        a:
          ret 1
        b:
          br d, x, y
        x:
          ret 2
        y:
          ret 3
        }
        """, "f")


class TestScope:
    def test_calls_rejected(self):
        module = parse_module("""
        func @g() { entry: ret 0 }
        func @f() {
        entry:
          x = call @g()
          ret x
        }
        """)
        from repro.transforms import preprocess_module

        work = module.clone()
        preprocess_module(work)
        with pytest.raises(ValueError, match="call-free"):
            RewritingSystem(work, work.function("f"))
