"""The differential oracle battery, one unit test per cross-check.

Each oracle is exercised in both directions: it stays green on the real
pipeline, and it fires when a deliberately broken ``repair_fn`` (or a
mis-specified input family) reintroduces exactly the disagreement that
oracle exists to detect.
"""

import pytest

from repro.core.repair import repair_module
from repro.fuzz.oracles import ORACLES, SampleInvalid, compile_sample, run_oracles
from repro.ir import parse_module
from repro.ir.instructions import Mov, Ret
from repro.ir.values import Const, Var

# A secret-steered branch plus a secret-indexed store: the repair has real
# work to do on every clause, so all six oracles get a meaty sample.
LEAKY_SRC = """
u32 f(secret uint s, uint p) {
  uint acc = p;
  uint tab[4] = {1, 2, 3, 4};
  if (s < p) {
    acc = acc + tab[(s) & 3];
  }
  tab[(s) & 3] = acc;
  return acc + tab[0];
}
"""

INPUTS = [[5, 9], [200, 9], [7, 3]]
#: differ from INPUTS[0] only in the secret parameter ``s``
SECRET_INPUTS = [[5, 9], [61, 9], [250, 9]]

# An original that is constant-time as written: certified up front, so the
# static↔dynamic oracle also runs its sound-direction check on the original.
CT_SRC = """
u32 f(secret uint s, uint p) {
  return (s ^ p) + 1;
}
"""

# The shape of fuzz seed 1 (see docs/FUZZING.md): a *public* scalar steers
# a table load.  Certification promises secret-independence only, so the
# certified↔dynamic comparison must run on the secret family, not on
# vectors whose public inputs vary.
PUBLIC_INDEX_SRC = """
const uint g0[4] = {7, 11, 13, 17};

u32 fuzz_entry(secret u8 *p1, uint n0) {
  return g0[(n0) & 3];
}
"""

# A "repair" that hands the leaky module straight back: the secret-steered
# branch survives, which is exactly what the dynamic and static oracles
# must both flag.  (Scalar-only entry: the repaired signature contract adds
# no length/cond parameters, so the identity keeps the arity valid.)
LEAKY_ORIGINAL_IR = """
func @f(s: int) {
entry:
  p0 = mov s < 3
  br p0, a, b
a:
  x = mov 1
  jmp c
b:
  y = mov 2
  jmp c
c:
  r = phi [x, a], [y, b]
  ret r
}
"""


def test_all_oracles_pass_on_repairable_program():
    module = compile_sample(LEAKY_SRC)
    report = run_oracles(module, "f", INPUTS, secret_inputs=SECRET_INPUTS)
    assert [r.name for r in report.results] == list(ORACLES)
    assert report.ok, report.summary()


def test_all_oracles_pass_on_constant_time_original():
    module = compile_sample(CT_SRC)
    report = run_oracles(module, "f", INPUTS, secret_inputs=SECRET_INPUTS)
    assert report.ok, report.summary()


def test_compile_sample_maps_frontend_errors():
    with pytest.raises(SampleInvalid):
        compile_sample("u32 f( { return 0; }")


# -- oracle: repair ----------------------------------------------------------


def test_repair_oracle_catches_crashing_repair():
    module = compile_sample(LEAKY_SRC)

    def exploding(_module):
        raise RuntimeError("rule [store] fell over")

    report = run_oracles(module, "f", INPUTS, repair_fn=exploding)
    assert report.failed == ("repair",)
    # Without a repaired module no other cross-check is defined.
    assert len(report.results) == 1
    assert "rule [store] fell over" in report.result("repair").detail


def test_repair_oracle_catches_invalid_output_ir():
    module = compile_sample(LEAKY_SRC)

    def corrupting(original):
        repaired = repair_module(original)
        block = next(iter(repaired.function("f").blocks.values()))
        block.instructions.insert(0, Mov("clobber", Var("never_defined")))
        return repaired

    report = run_oracles(module, "f", INPUTS, repair_fn=corrupting)
    assert report.failed == ("repair",)
    assert "invalid IR after repair" in report.result("repair").detail


# -- oracle: semantics -------------------------------------------------------


def test_semantics_oracle_catches_wrong_output():
    module = compile_sample(LEAKY_SRC)

    def wrong_value(original):
        repaired = repair_module(original)
        for block in repaired.function("f").blocks.values():
            if isinstance(block.terminator, Ret):
                block.terminator = Ret(Const(123456789))
        return repaired

    report = run_oracles(module, "f", INPUTS, repair_fn=wrong_value)
    assert "semantics" in report.failed


# -- oracle: backend ---------------------------------------------------------


def test_backend_oracle_skips_with_single_backend():
    module = compile_sample(CT_SRC)
    report = run_oracles(module, "f", INPUTS, backends=("interp",))
    result = report.result("backend")
    assert result.ok and "skipped" in result.detail


def test_backend_oracle_fails_on_unrunnable_backend():
    module = compile_sample(CT_SRC)
    report = run_oracles(module, "f", INPUTS, backends=("interp", "no-such"))
    result = report.result("backend")
    assert not result.ok
    assert "exception" in result.detail


# -- oracle: isochronicity + static_dynamic ----------------------------------


def test_isochronicity_and_static_dynamic_catch_residual_branch():
    original = parse_module(LEAKY_ORIGINAL_IR)
    broken = parse_module(LEAKY_ORIGINAL_IR)

    report = run_oracles(
        original, "f", [[0], [7], [100]],
        secret_inputs=[[0], [7]],
        repair_fn=lambda _module: broken,
    )
    iso = report.result("isochronicity")
    assert not iso.ok
    assert "operation trace varies" in iso.detail
    sd = report.result("static_dynamic")
    assert not sd.ok
    assert "secret-steered branches" in sd.detail


def test_static_dynamic_uses_secret_family_not_public_variants():
    module = compile_sample(PUBLIC_INDEX_SRC)
    inputs = [
        [[1, 2, 3, 4], 0],
        [[5, 6, 7, 8], 1],   # public n0 varies: data trace legitimately moves
        [[9, 1, 2, 3], 2],
    ]
    secret_only = [
        [[1, 2, 3, 4], 0],
        [[5, 6, 7, 8], 0],   # only the secret pointer contents vary
        [[9, 1, 2, 3], 0],
    ]
    report = run_oracles(module, "fuzz_entry", inputs, secret_inputs=secret_only)
    assert report.ok, report.summary()

    # Feeding public-varying vectors as the "secret family" is a caller
    # error, and the oracle duly mistrusts the certificate: this is the
    # false alarm the secret_inputs channel exists to prevent.
    confused = run_oracles(module, "fuzz_entry", inputs, secret_inputs=inputs)
    assert "static_dynamic" in confused.failed


# -- oracle: opt_sanitize ----------------------------------------------------


def test_opt_sanitize_oracle_reports_sanitizer_trips(monkeypatch):
    from repro.opt.sanitize import LeakSanitizerError
    from repro.statics.diagnostics import Anchor, Diagnostic

    module = compile_sample(CT_SRC)
    diagnostic = Diagnostic(
        rule="OPT-LEAK-BRANCH",
        severity="error",
        message="leak fingerprint grew in @f",
        anchor=Anchor(function="f", block="cse"),
    )

    def tripping(_module, sanitize=False):
        raise LeakSanitizerError("cse: leak fingerprint grew in @f", diagnostic)

    monkeypatch.setattr("repro.opt.pipeline.optimize", tripping)
    report = run_oracles(module, "f", INPUTS, secret_inputs=SECRET_INPUTS)
    result = report.result("opt_sanitize")
    assert not result.ok
    assert "sanitizer tripped" in result.detail
    assert "cse" in result.detail


def test_report_serialization_round_trip():
    module = compile_sample(CT_SRC)
    report = run_oracles(module, "f", INPUTS, secret_inputs=SECRET_INPUTS)
    record = report.as_dict()
    assert record["ok"] is True
    assert [r["name"] for r in record["results"]] == list(ORACLES)
    assert "all oracles agree" in report.summary()
