"""Word semantics of the baseline language's operators."""

import pytest

from repro.ir.ops import (
    BINARY_OPS,
    UNARY_OPS,
    WORD_BITS,
    eval_binop,
    eval_unop,
    to_unsigned,
    wrap,
)

WORD_MAX = (1 << (WORD_BITS - 1)) - 1
WORD_MIN = -(1 << (WORD_BITS - 1))


class TestWrap:
    def test_identity_in_range(self):
        assert wrap(42) == 42
        assert wrap(-42) == -42

    def test_positive_overflow_wraps_negative(self):
        assert wrap(WORD_MAX + 1) == WORD_MIN

    def test_negative_overflow_wraps_positive(self):
        assert wrap(WORD_MIN - 1) == WORD_MAX

    def test_extremes(self):
        assert wrap(WORD_MAX) == WORD_MAX
        assert wrap(WORD_MIN) == WORD_MIN

    def test_unsigned_reinterpretation(self):
        assert to_unsigned(-1) == (1 << WORD_BITS) - 1
        assert to_unsigned(5) == 5


class TestArithmetic:
    def test_add_wraps(self):
        assert eval_binop("+", WORD_MAX, 1) == WORD_MIN

    def test_sub_wraps(self):
        assert eval_binop("-", WORD_MIN, 1) == WORD_MAX

    def test_mul_wraps(self):
        assert eval_binop("*", 1 << 32, 1 << 32) == 0

    def test_div_truncates_toward_zero(self):
        assert eval_binop("/", 7, 2) == 3
        assert eval_binop("/", -7, 2) == -3
        assert eval_binop("/", 7, -2) == -3

    def test_div_by_zero_is_zero(self):
        # Deliberate total semantics: traps would be input-dependent events.
        assert eval_binop("/", 42, 0) == 0

    def test_rem_sign_follows_dividend(self):
        assert eval_binop("%", 7, 2) == 1
        assert eval_binop("%", -7, 2) == -1

    def test_rem_by_zero_is_zero(self):
        assert eval_binop("%", 42, 0) == 0


class TestBitwise:
    def test_and_or_xor(self):
        assert eval_binop("&", 0b1100, 0b1010) == 0b1000
        assert eval_binop("|", 0b1100, 0b1010) == 0b1110
        assert eval_binop("^", 0b1100, 0b1010) == 0b0110

    def test_shl_wraps(self):
        assert eval_binop("<<", 1, WORD_BITS - 1) == WORD_MIN

    def test_shr_is_logical(self):
        # -1 has all bits set; a logical shift brings in zeros.
        assert eval_binop(">>", -1, 1) == WORD_MAX

    def test_shift_amount_is_modular(self):
        assert eval_binop("<<", 3, WORD_BITS) == 3
        assert eval_binop(">>", 3, WORD_BITS + 1) == 1


class TestComparisons:
    @pytest.mark.parametrize("op,expected", [
        ("==", 0), ("!=", 1), ("<", 1), ("<=", 1), (">", 0), (">=", 0),
    ])
    def test_signed_comparison(self, op, expected):
        assert eval_binop(op, -1, 1) == expected

    def test_results_are_boolean(self):
        for op in ("==", "!=", "<", "<=", ">", ">="):
            assert eval_binop(op, 3, 3) in (0, 1)


class TestUnary:
    def test_neg_wraps(self):
        assert eval_unop("-", WORD_MIN) == WORD_MIN  # two's complement edge

    def test_logical_not(self):
        assert eval_unop("!", 0) == 1
        assert eval_unop("!", 7) == 0
        assert eval_unop("!", -1) == 0

    def test_bitwise_not(self):
        assert eval_unop("~", 0) == -1
        assert eval_unop("~", -1) == 0


class TestErrors:
    def test_unknown_binop_rejected(self):
        with pytest.raises(ValueError):
            eval_binop("**", 2, 3)

    def test_unknown_unop_rejected(self):
        with pytest.raises(ValueError):
            eval_unop("?", 1)

    def test_op_tables_are_consistent(self):
        for op in BINARY_OPS:
            assert isinstance(eval_binop(op, 5, 3), int)
        for op in UNARY_OPS:
            assert isinstance(eval_unop(op, 5), int)
