"""The repair transformation: rules, conditions, contracts, driver."""

import pytest

from repro.core import (
    RepairOptions,
    RepairStats,
    build_signature_map,
    repair_module,
)
from repro.exec import Interpreter
from repro.ir import CtSel, Load, Store, parse_module, validate_module
from repro.verify import adapt_inputs, check_invariance, compare_semantics

from tests.conftest import OFDF_IR


@pytest.fixture
def repaired_ofdf(ofdf_module):
    return repair_module(ofdf_module)


class TestInterfaceAugmentation:
    def test_length_param_per_pointer(self, repaired_ofdf):
        params = [p.name for p in repaired_ofdf.function("ofdf").params]
        assert params == ["a", "a_n", "b", "b_n"]

    def test_no_cond_param_for_uncalled_functions(self, repaired_ofdf):
        names = [p.name for p in repaired_ofdf.function("ofdf").params]
        assert not any(n.startswith("__cond") for n in names)

    def test_force_cond_threads_everywhere(self, ofdf_module):
        repaired = repair_module(ofdf_module, RepairOptions(force_cond=True))
        assert repaired.function("ofdf").params[-1].name == "__cond"

    def test_signature_map_length_params(self, ofdf_module):
        signatures = build_signature_map(ofdf_module)
        assert signatures["ofdf"].length_params == {"a": "a_n", "b": "b_n"}


class TestStructure:
    def test_no_conditional_branches_remain(self, repaired_ofdf):
        from repro.ir.instructions import Br

        function = repaired_ofdf.function("ofdf")
        assert not any(
            isinstance(b.terminator, Br) for b in function.blocks.values()
        )

    def test_no_phis_remain(self, repaired_ofdf):
        from repro.ir.instructions import Phi

        function = repaired_ofdf.function("ofdf")
        assert not any(
            isinstance(i, Phi) for _, i in function.iter_instructions()
        )

    def test_shadow_variable_allocated(self, repaired_ofdf):
        from repro.ir.instructions import Alloc

        entry = repaired_ofdf.function("ofdf").entry
        allocs = [i for i in entry.instructions if isinstance(i, Alloc)]
        assert len(allocs) == 1
        assert allocs[0].dest.startswith("sh")

    def test_loads_are_guarded(self, repaired_ofdf):
        function = repaired_ofdf.function("ofdf")
        loads = [i for _, i in function.iter_instructions()
                 if isinstance(i, Load)]
        # Every load's array operand is a ctsel result (original array or
        # shadow), i.e. no raw access survives.
        ctsel_dests = {
            i.dest for _, i in function.iter_instructions()
            if isinstance(i, CtSel)
        }
        assert loads
        assert all(l.array.name in ctsel_dests for l in loads)

    def test_result_is_valid_module(self, repaired_ofdf):
        validate_module(repaired_ofdf)

    def test_input_module_unchanged(self, ofdf_module):
        before = str(ofdf_module)
        repair_module(ofdf_module)
        assert str(ofdf_module) == before


class TestSemanticsAndInvariance:
    CASES = [
        ([1, 2], [1, 2], 1),
        ([1, 2], [1, 3], 0),
        ([9, 2], [1, 2], 0),
        ([0, 0], [0, 0], 1),
    ]

    def test_outputs_preserved(self, ofdf_module, repaired_ofdf):
        interpreter = Interpreter(repaired_ofdf)
        for a, b, expected in self.CASES:
            assert interpreter.run("ofdf", [a, 2, b, 2]).value == expected

    def test_operation_and_data_invariance(self, repaired_ofdf):
        report = check_invariance(
            repaired_ofdf, "ofdf",
            [[list(a), 2, list(b), 2] for a, b, _ in self.CASES],
        )
        assert report.operation_invariant
        assert report.data_invariant
        assert report.memory_safe

    def test_example2_short_arrays_are_safe(self, repaired_ofdf):
        """The paper's Example 2: a = {0}, b = {1} must not fault.

        Note the subtlety: on *differing* size-1 arrays the original oFdF
        returns early without touching a[1], so a memory-safe repair must
        not touch it either.  (On *equal* size-1 arrays the original itself
        reads a[1] out of bounds, and Property 3 permits the repaired code
        to do whatever the original did.)
        """
        report = check_invariance(
            repaired_ofdf, "ofdf", [[[0], 1, [1], 1], [[3], 1, [4], 1]]
        )
        assert report.memory_safe
        # Data invariance is forfeited outside the contract, by design:
        # operation invariance must still hold.
        assert report.operation_invariant

    def test_zero_contract_disables_data_invariance_only(self, ofdf_module):
        repaired = repair_module(ofdf_module)
        # Lie about the contract: claim length 0 for both arrays.
        report = check_invariance(
            repaired, "ofdf",
            [[[1, 2], 0, [1, 2], 0], [[3, 4], 0, [5, 6], 0]],
        )
        assert report.operation_invariant
        assert report.memory_safe


class TestManualContracts:
    def test_manual_size_overrides_analysis(self):
        module = parse_module("""
        func @f(a: ptr) {
        entry:
          x = load a[1]
          ret x
        }
        """)
        options = RepairOptions(manual_sizes={"f": {"a": 2}})
        repaired = repair_module(module, options)
        interpreter = Interpreter(repaired)
        assert interpreter.run("f", [[7, 8], 99]).value == 8

    def test_manual_size_can_name_a_parameter(self):
        module = parse_module("""
        func @f(a: ptr, n: int) {
        entry:
          x = load a[0]
          ret x
        }
        """)
        options = RepairOptions(manual_sizes={"f": {"a": "n"}})
        repaired = repair_module(module, options)
        validate_module(repaired)

    def test_bad_manual_size_type_rejected(self):
        module = parse_module("func @f(a: ptr) { entry: ret 0 }")
        with pytest.raises(TypeError):
            repair_module(module, RepairOptions(manual_sizes={"f": {"a": 1.5}}))


class TestStoreRule:
    def test_zombie_store_preserves_memory(self):
        module = parse_module("""
        func @f(a: ptr, c: int) {
        entry:
          br c, then, done
        then:
          store 99, a[0]
          jmp done
        done:
          ret 0
        }
        """)
        repaired = repair_module(module)
        interpreter = Interpreter(repaired)
        # Condition false: the store must not take effect...
        result = interpreter.run("f", [[5], 1, 0])
        assert result.arrays[0] == [5]
        # ...but it still performs the same memory traffic.
        kinds = [a.kind for a in result.trace.memory]
        assert kinds.count("store") == 1
        # Condition true: the store happens.
        assert interpreter.run("f", [[5], 1, 1]).arrays[0] == [99]

    def test_store_emits_preparatory_load(self):
        module = parse_module("""
        func @f(a: ptr) {
        entry:
          store 1, a[0]
          ret 0
        }
        """)
        repaired = repair_module(module)
        function = repaired.function("f")
        instrs = [i for _, i in function.iter_instructions()]
        load_index = next(i for i, x in enumerate(instrs) if isinstance(x, Load))
        store_index = next(i for i, x in enumerate(instrs) if isinstance(x, Store))
        assert load_index < store_index


class TestRepairStats:
    def test_stats_populated(self, ofdf_module):
        stats = RepairStats()
        repair_module(ofdf_module, stats=stats)
        assert stats.seconds > 0
        assert stats.original_instructions == 12
        assert stats.repaired_instructions > stats.original_instructions
        assert stats.size_ratio > 1
        assert "ofdf" in stats.per_function


class TestPreprocessIntegration:
    def test_loopy_function_rejected(self):
        module = parse_module("""
        func @f(c: int) {
        entry:
          jmp head
        head:
          br c, head, done
        done:
          ret 0
        }
        """)
        from repro.transforms import PreprocessError

        with pytest.raises(PreprocessError, match="loop"):
            repair_module(module)

    def test_recursive_module_rejected(self):
        module = parse_module("""
        func @f(n: int) {
        entry:
          x = call @f(n)
          ret x
        }
        """)
        from repro.transforms import PreprocessError

        with pytest.raises(PreprocessError, match="recursive"):
            repair_module(module)

    def test_multiple_returns_are_merged(self):
        module = parse_module("""
        func @f(c: int) {
        entry:
          br c, a, b
        a:
          ret 1
        b:
          ret 2
        }
        """)
        repaired = repair_module(module)
        interpreter = Interpreter(repaired)
        assert interpreter.run("f", [1]).value == 1
        assert interpreter.run("f", [0]).value == 2
