"""The dudect-style statistical timing tester."""

import math
import random

from repro import compile_minic, repair_module
from repro.verify import adapt_inputs
from repro.verify.dudect import (
    T_THRESHOLD,
    Welch,
    dudect_test,
    make_array_randomizer,
)

LEAKY_SOURCE = """
uint check(secret uint *a, secret uint *b) {
  for (uint i = 0; i < 8; i = i + 1) {
    if (a[i] != b[i]) { return 0; }
  }
  return 1;
}
"""

CONSTANT_SOURCE = """
uint mix(secret uint *a, secret uint *b) {
  uint acc = 0;
  for (uint i = 0; i < 8; i = i + 1) {
    acc = acc ^ (a[i] * b[i]);
  }
  return acc;
}
"""


class TestWelch:
    def test_identical_groups_score_zero(self):
        welch = Welch()
        for value in (10.0, 12.0, 11.0):
            welch.push(0, value)
            welch.push(1, value)
        assert abs(welch.statistic()) < 1e-9

    def test_separated_groups_score_high(self):
        welch = Welch()
        rng = random.Random(0)
        for _ in range(100):
            welch.push(0, 100.0 + rng.gauss(0, 1))
            welch.push(1, 10.0 + rng.gauss(0, 1))
        assert abs(welch.statistic()) > T_THRESHOLD

    def test_deterministic_difference_is_infinite(self):
        welch = Welch()
        for _ in range(5):
            welch.push(0, 100.0)
            welch.push(1, 10.0)
        assert math.isinf(welch.statistic())

    def test_too_few_samples_is_zero(self):
        welch = Welch()
        welch.push(0, 1.0)
        assert welch.statistic() == 0.0


class TestDudect:
    def fixed(self):
        return [[7] * 8, [7] * 8]

    def test_detects_early_exit_leak(self):
        module = compile_minic(LEAKY_SOURCE)
        report = dudect_test(
            module, "check", self.fixed(),
            make_array_randomizer(self.fixed()), measurements=60,
        )
        assert report.leaking
        assert report.max_cycles > report.min_cycles

    def test_constant_time_code_passes(self):
        module = compile_minic(CONSTANT_SOURCE)
        report = dudect_test(
            module, "mix", self.fixed(),
            make_array_randomizer(self.fixed()), measurements=60,
        )
        assert not report.leaking
        assert report.max_cycles == report.min_cycles

    def test_repaired_leaky_code_passes(self):
        module = compile_minic(LEAKY_SOURCE)
        repaired = repair_module(module)
        fixed = adapt_inputs(module, "check", [self.fixed()])[0]
        base = make_array_randomizer(self.fixed())

        def randomize(rng):
            a, b = base(rng)
            return [a, 8, b, 8]

        report = dudect_test(repaired, "check", fixed, randomize,
                             measurements=60)
        assert not report.leaking
        assert report.max_cycles == report.min_cycles

    def test_leak_survives_measurement_noise(self):
        module = compile_minic(LEAKY_SOURCE)
        report = dudect_test(
            module, "check", self.fixed(),
            make_array_randomizer(self.fixed()),
            measurements=400, jitter=4.0,
        )
        assert report.leaking

    def test_noise_does_not_cause_false_positives(self):
        module = compile_minic(CONSTANT_SOURCE)
        report = dudect_test(
            module, "mix", self.fixed(),
            make_array_randomizer(self.fixed()),
            measurements=400, jitter=4.0,
        )
        assert not report.leaking

    def test_report_summary_text(self):
        module = compile_minic(CONSTANT_SOURCE)
        report = dudect_test(
            module, "mix", self.fixed(),
            make_array_randomizer(self.fixed()), measurements=20,
        )
        assert "constant time" in report.summary()
        assert report.measurements == 20

    def test_deterministic_given_seed(self):
        module = compile_minic(LEAKY_SOURCE)
        args = (module, "check", self.fixed(),
                make_array_randomizer(self.fixed()))
        a = dudect_test(*args, measurements=40, jitter=2.0, seed=3)
        b = dudect_test(*args, measurements=40, jitter=2.0, seed=3)
        assert a.t_statistic == b.t_statistic
