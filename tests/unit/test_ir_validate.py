"""Well-formedness and SSA validation."""

import pytest

from repro.ir import (
    Function,
    Module,
    ValidationError,
    parse_module,
    validate_function,
    validate_module,
)


def check(text: str):
    module = parse_module(text)
    validate_module(module)
    return module


class TestStructure:
    def test_valid_module_passes(self):
        check("""
        func @f(a: ptr) {
        entry:
          x = load a[0]
          ret x
        }
        """)

    def test_empty_function_rejected(self):
        with pytest.raises(ValidationError):
            validate_function(Function("f"))

    def test_unterminated_block_rejected(self):
        module = parse_module("func @f() { entry: ret 0 }")
        module.function("f").entry.terminator = None
        with pytest.raises(ValidationError, match="no terminator"):
            validate_module(module)


class TestSSA:
    def test_double_definition_rejected(self):
        with pytest.raises(ValidationError, match="defined twice"):
            check("""
            func @f() {
            entry:
              x = mov 1
              x = mov 2
              ret x
            }
            """)

    def test_undefined_use_rejected(self):
        with pytest.raises(ValidationError, match="undefined"):
            check("func @f() { entry: ret ghost }")

    def test_use_before_definition_in_block_rejected(self):
        with pytest.raises(ValidationError, match="before its definition"):
            check("""
            func @f() {
            entry:
              y = mov x
              x = mov 1
              ret y
            }
            """)

    def test_non_dominating_definition_rejected(self):
        with pytest.raises(ValidationError, match="does not dominate"):
            check("""
            func @f(c: int) {
            entry:
              br c, left, right
            left:
              x = mov 1
              jmp join
            right:
              jmp join
            join:
              ret x
            }
            """)

    def test_phi_makes_cross_branch_value_legal(self):
        check("""
        func @f(c: int) {
        entry:
          br c, left, right
        left:
          x = mov 1
          jmp join
        right:
          jmp join
        join:
          y = phi [x, left], [0, right]
          ret y
        }
        """)

    def test_param_shadowing_global_rejected(self):
        with pytest.raises(ValidationError, match="shadows a global"):
            check("""
            global @g[1]
            func @f(g: ptr) {
            entry:
              ret 0
            }
            """)


class TestPhis:
    def test_phi_after_non_phi_rejected(self):
        with pytest.raises(ValidationError, match="does not lead its block"):
            check("""
            func @f(c: int) {
            entry:
              br c, a, b
            a:
              jmp join
            b:
              jmp join
            join:
              t = mov 1
              x = phi [1, a], [2, b]
              ret x
            }
            """)

    def test_phi_incomings_must_match_predecessors(self):
        with pytest.raises(ValidationError, match="do not match"):
            check("""
            func @f(c: int) {
            entry:
              br c, a, b
            a:
              jmp join
            b:
              jmp join
            join:
              x = phi [1, a], [2, entry]
              ret x
            }
            """)


class TestCalls:
    def test_call_to_undefined_function_rejected(self):
        with pytest.raises(ValidationError, match="undefined"):
            check("""
            func @f() {
            entry:
              x = call @ghost()
              ret x
            }
            """)

    def test_call_arity_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="arguments"):
            check("""
            func @g(a: int) { entry: ret a }
            func @f() {
            entry:
              x = call @g()
              ret x
            }
            """)

    def test_valid_call_passes(self):
        check("""
        func @g(a: int) { entry: ret a }
        func @f() {
        entry:
          x = call @g(1)
          ret x
        }
        """)


class TestStructuredDiagnostics:
    """The collect-mode API (`diagnose_*`) and the diagnostics the strict
    mode attaches to `ValidationError`."""

    def test_validation_error_carries_diagnostic(self):
        from repro.ir import diagnose_module  # noqa: F401  (exported)

        module = parse_module("func @f() { entry: ret ghost }")
        with pytest.raises(ValidationError) as exc:
            validate_module(module)
        diagnostic = exc.value.diagnostic
        assert diagnostic is not None
        assert diagnostic.rule == "IR-SSA-UNDEF"
        assert diagnostic.anchor.function == "f"

    def test_diagnose_collects_multiple_findings(self):
        from repro.ir import diagnose_module

        module = parse_module("""
        func @f() {
        entry:
          x = mov 1
          x = mov 2
          y = mov ghost
          ret y
        }
        """)
        rules = [d.rule for d in diagnose_module(module)]
        assert "IR-SSA-REDEF" in rules
        assert "IR-SSA-UNDEF" in rules

    def test_phi_missing_incoming(self):
        from repro.ir import diagnose_function

        module = parse_module("""
        func @f(c: int) {
        entry:
          br c, a, b
        a:
          jmp done
        b:
          jmp done
        done:
          r = phi [1, a]
          ret r
        }
        """)
        rules = [d.rule for d in diagnose_function(module.function("f"))]
        assert rules == ["IR-PHI-PRED-MISSING"]

    def test_phi_extra_incoming(self):
        from repro.ir import diagnose_function

        module = parse_module("""
        func @f(c: int) {
        entry:
          jmp done
        done:
          r = phi [1, entry], [2, nowhere]
          ret r
        }
        """)
        diagnostics = diagnose_function(module.function("f"))
        assert [d.rule for d in diagnostics] == ["IR-PHI-PRED-EXTRA"]
        assert "nowhere" in diagnostics[0].message

    def test_phi_duplicate_incoming(self):
        from repro.ir import diagnose_function

        module = parse_module("""
        func @f(c: int) {
        entry:
          jmp done
        done:
          r = phi [1, entry], [2, entry]
          ret r
        }
        """)
        rules = [d.rule for d in diagnose_function(module.function("f"))]
        assert "IR-PHI-PRED-DUP" in rules

    def test_phi_mismatch_still_raises_with_historic_message(self):
        with pytest.raises(ValidationError, match="do not match"):
            check("""
            func @f(c: int) {
            entry:
              br c, a, b
            a:
              jmp done
            b:
              jmp done
            done:
              r = phi [1, a]
              ret r
            }
            """)

    def test_diagnostics_anchor_the_instruction(self):
        from repro.ir import diagnose_function

        module = parse_module("""
        func @f() {
        entry:
          jmp done
        done:
          r = phi [1, entry], [2, entry]
          ret r
        }
        """)
        diagnostic = diagnose_function(module.function("f"))[0]
        assert diagnostic.anchor.block == "done"
        assert diagnostic.anchor.index == 0
        assert "phi" in diagnostic.anchor.instruction
