"""Unit tests of the crash-replay job journal (torn tails, compaction)."""

import json

from repro.serve.journal import JobJournal, _decode, _encode


def _payload(i):
    return {"kind": "repair", "source": f"int f() {{ return {i}; }}",
            "name": f"j{i}"}


def _journal(tmp_path, **kwargs):
    return JobJournal(tmp_path / "journal.jsonl", **kwargs)


class TestRecordCodec:
    def test_round_trip(self):
        record = {"t": "accept", "seq": 3, "job_id": "j1", "key": "k",
                  "payload": _payload(1)}
        assert _decode(_encode(record).rstrip(b"\n")) == record

    def test_flipped_byte_fails_crc(self):
        line = _encode({"t": "done", "seq": 1, "job_id": "j1",
                        "key": "k", "status": "done"}).rstrip(b"\n")
        # Corrupt a byte inside the payload, keeping valid JSON.
        corrupted = line.replace(b'"done"', b'"dome"', 1)
        assert json.loads(corrupted.decode())  # still parses...
        assert _decode(corrupted) is None      # ...but the CRC catches it

    def test_garbage_is_rejected(self):
        assert _decode(b"not json at all") is None
        assert _decode(b'{"no": "crc"}') is None


class TestRecovery:
    def test_accept_without_done_is_pending(self, tmp_path):
        journal = _journal(tmp_path)
        journal.append_accept(1, "j1", "k1", _payload(1))
        journal.append_accept(2, "j2", "k2", _payload(2))
        journal.append_done(3, "j1", "k1", "done")
        journal.close()

        pending = _journal(tmp_path).recover()
        assert [r["job_id"] for r in pending] == ["j2"]
        assert pending[0]["payload"] == _payload(2)

    def test_pending_replays_in_seq_order(self, tmp_path):
        journal = _journal(tmp_path)
        for seq, job in ((5, "j5"), (2, "j2"), (9, "j9")):
            journal.append_accept(seq, job, f"k{job}", _payload(seq))
        journal.close()
        pending = _journal(tmp_path).recover()
        assert [r["job_id"] for r in pending] == ["j2", "j5", "j9"]

    def test_torn_tail_is_truncated_not_fatal(self, tmp_path):
        journal = _journal(tmp_path)
        journal.append_accept(1, "j1", "k1", _payload(1))
        journal.append_accept(2, "j2", "k2", _payload(2))
        journal.close()
        # Simulate a crash mid-append: half a record, no newline.
        line = _encode({"t": "accept", "seq": 3, "job_id": "j3",
                        "key": "k3", "payload": _payload(3)})
        with open(journal.path, "ab") as handle:
            handle.write(line[: len(line) // 2])

        fresh = _journal(tmp_path)
        pending = fresh.recover()
        assert [r["job_id"] for r in pending] == ["j1", "j2"]
        assert fresh.stats_counters["torn_tail"] == 1
        # The compacted journal holds exactly the pending records again.
        assert journal.path.read_bytes().count(b"\n") == 2

    def test_corrupt_middle_record_stops_replay_there(self, tmp_path):
        journal = _journal(tmp_path)
        journal.append_accept(1, "j1", "k1", _payload(1))
        journal.close()
        with open(journal.path, "ab") as handle:
            handle.write(b'{"crc": 0, "t": "accept"}\n')
        journal2 = _journal(tmp_path)
        journal2.append_accept(2, "j2", "k2", _payload(2))
        journal2.close()

        # Records after the corruption can't be trusted to be
        # crash-consistent; recovery keeps everything before it.
        pending = _journal(tmp_path).recover()
        assert [r["job_id"] for r in pending] == ["j1"]

    def test_recovery_compacts_and_is_idempotent(self, tmp_path):
        journal = _journal(tmp_path)
        for i in range(20):
            journal.append_accept(2 * i + 1, f"j{i}", f"k{i}", _payload(i))
            journal.append_done(2 * i + 2, f"j{i}", f"k{i}", "done")
        journal.append_accept(100, "open", "kopen", _payload(99))
        journal.close()
        size_before = journal.path.stat().st_size

        fresh = _journal(tmp_path)
        pending = fresh.recover()
        fresh.close()
        assert [r["job_id"] for r in pending] == ["open"]
        assert journal.path.stat().st_size < size_before

        again = _journal(tmp_path)
        assert [r["job_id"] for r in again.recover()] == ["open"]
        again.close()

    def test_missing_journal_recovers_empty(self, tmp_path):
        journal = JobJournal(tmp_path / "nested" / "fresh.jsonl")
        assert journal.recover() == []
        journal.append_accept(1, "j1", "k1", _payload(1))
        journal.close()
        assert len(_journal_path_lines(journal.path)) == 1


def _journal_path_lines(path):
    return [line for line in path.read_bytes().split(b"\n") if line]


class TestFsyncBatching:
    def test_fsync_every_n_appends(self, tmp_path):
        journal = _journal(tmp_path, fsync_every=4)
        for i in range(10):
            journal.append_accept(i + 1, f"j{i}", f"k{i}", _payload(i))
        assert journal.stats_counters["appends"] == 10
        assert journal.stats_counters["fsyncs"] == 2  # at 4 and 8
        journal.close()  # close flushes the straggler
        assert journal.stats_counters["fsyncs"] == 3

    def test_stats_shape(self, tmp_path):
        journal = _journal(tmp_path, fsync_every=1)
        journal.append_accept(1, "j1", "k1", _payload(1))
        stats = journal.stats()
        assert stats["appends"] == 1
        assert stats["fsyncs"] == 1
        assert stats["fsync_every"] == 1
        journal.close()
