"""``run_many`` on non-batch executors: the interpreter fallback loop.

``run_many`` hands the whole vector family to ``run_batch`` when the
executor has one and otherwise loops ``run`` per vector.  These tests pin
the contract the serve/verify layers rely on: the fallback loop is
bit-identical to the batch dispatch (values, cycles, steps, arrays), the
result list is index-aligned, input vectors are not mutated, and a
per-vector error surfaces in vector order on every backend.
"""

import pytest

from repro.exec import make_executor, run_many
from repro.exec.memory import MemorySafetyViolation
from repro.ir import parse_module

SUM_IR = """
func @sum(a: ptr, n: int) {
entry:
  jmp head
head:
  i = phi [0, entry], [i2, body]
  s = phi [0, entry], [s2, body]
  p = mov i < n
  br p, body, done
body:
  x = load a[i]
  s2 = mov s + x
  i2 = mov i + 1
  jmp head
done:
  ret s
}
"""


def _module():
    return parse_module(SUM_IR, name="run_many_fixture")


def _vectors(count=10, width=4):
    return [
        [[(lane * 13 + k) % 89 for k in range(width)], width]
        for lane in range(count)
    ]


def _observe(result):
    return (
        result.value,
        result.cycles,
        result.steps,
        result.arrays,
        sorted(result.global_state),
        len(result.violations),
    )


def test_fallback_loop_matches_batch_bit_for_bit():
    module = _module()
    vectors = _vectors()
    batch = run_many(make_executor(module, backend="batch"), "sum", vectors)
    for backend in ("interp", "compiled"):
        executor = make_executor(module, backend=backend)
        assert not hasattr(executor, "run_batch")
        results = run_many(executor, "sum", vectors)
        assert len(results) == len(vectors)
        assert [_observe(r) for r in results] == [_observe(r) for r in batch]


def test_fallback_results_are_index_aligned():
    module = _module()
    vectors = _vectors(count=6)
    results = run_many(make_executor(module, backend="interp"), "sum", vectors)
    for vector, result in zip(vectors, results):
        assert result.value == sum(vector[0])


def test_fallback_does_not_mutate_vectors():
    module = _module()
    vectors = _vectors(count=4)
    snapshot = [[list(v[0]), v[1]] for v in vectors]
    for backend in ("interp", "compiled", "batch"):
        run_many(make_executor(module, backend=backend), "sum", vectors)
        assert vectors == snapshot


@pytest.mark.parametrize("backend", ["interp", "compiled", "batch"])
def test_first_erroring_vector_raises_in_order(backend):
    """Vector 2 reads out of bounds before vector 4 does: every backend
    must surface vector 2's violation (the fallback loop trivially does;
    the batch path documents the same order)."""
    module = _module()
    vectors = _vectors(count=6)
    vectors[2] = [[1, 2], 5]  # OOB at i=2
    vectors[4] = [[3], 5]
    executor = make_executor(module, backend=backend)
    with pytest.raises(MemorySafetyViolation) as excinfo_each:
        executor.run("sum", list(vectors[2]))
    with pytest.raises(MemorySafetyViolation) as excinfo_many:
        run_many(executor, "sum", vectors)
    assert str(excinfo_many.value) == str(excinfo_each.value)


def test_run_many_empty_family():
    module = _module()
    for backend in ("interp", "compiled", "batch"):
        assert run_many(make_executor(module, backend=backend), "sum", []) == []
