"""The ``lif lint`` subcommand: verdicts, JSON determinism, round-trip."""

import json

import pytest

from repro.cli import main
from repro.statics.diagnostics import diagnostics_from_json

LEAKY = """
uint compare(secret uint *a, secret uint *b) {
  for (uint i = 0; i < 2; i = i + 1) {
    if (a[i] != b[i]) { return 0; }
  }
  return 1;
}
"""

CLEAN = """
uint mix(secret uint *a) {
  uint acc = 0;
  for (uint i = 0; i < 2; i = i + 1) {
    acc = acc ^ a[i];
  }
  return acc;
}
"""


@pytest.fixture
def leaky_file(tmp_path):
    path = tmp_path / "compare.mc"
    path.write_text(LEAKY)
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "mix.mc"
    path.write_text(CLEAN)
    return str(path)


class TestLintFile:
    def test_leaky_source_fails_with_branch_diagnostic(self, leaky_file, capsys):
        assert main(["lint", leaky_file]) == 1
        out = capsys.readouterr().out
        assert "CT-BRANCH-SECRET" in out
        assert "RESIDUAL_LEAK" in out

    def test_clean_source_certifies(self, clean_file, capsys):
        assert main(["lint", clean_file]) == 0
        out = capsys.readouterr().out
        assert "CERTIFIED_CONSTANT_TIME" in out

    def test_repair_flag_certifies_the_leaky_source(self, leaky_file, capsys):
        assert main(["lint", leaky_file, "--repair"]) == 0
        out = capsys.readouterr().out
        assert "CERTIFIED_CONSTANT_TIME" in out
        assert "CT-BRANCH-SECRET" not in out

    def test_missing_file_argument(self, capsys):
        assert main(["lint"]) == 2


class TestLintJson:
    def test_json_is_deterministic(self, leaky_file, capsys):
        main(["lint", leaky_file, "--json"])
        first = capsys.readouterr().out
        main(["lint", leaky_file, "--json"])
        second = capsys.readouterr().out
        assert first == second

    def test_json_round_trips_and_carries_verdicts(self, leaky_file, capsys):
        main(["lint", leaky_file, "--json"])
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert payload["verdicts"]["compare"] == "RESIDUAL_LEAK"
        diagnostics = diagnostics_from_json(out)
        assert any(d.rule == "CT-BRANCH-SECRET" for d in diagnostics)
        # Re-render from the parsed records: the serialisation is lossless.
        assert [d.as_dict() for d in diagnostics] == payload["diagnostics"]


class TestLintSuite:
    def test_unknown_benchmark_rejected(self, capsys):
        assert main(["lint", "--suite", "not-a-benchmark"]) == 2

    def test_suite_subset_passes(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["lint", "--suite", "ofdf", "otdt", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"ofdf", "otdt"}
        for name in payload:
            repaired = payload[name]["repaired"]
            assert all(
                verdict == "CERTIFIED_CONSTANT_TIME"
                for verdict in repaired["verdicts"].values()
            )
        # The original oFdF leaks through its early-exit branches.
        original = payload["ofdf"]["original"]
        assert "RESIDUAL_LEAK" in original["verdicts"].values()


class TestLintChannels:
    def test_json_carries_per_channel_verdicts(self, leaky_file, capsys):
        main(["lint", leaky_file, "--json"])
        payload = json.loads(capsys.readouterr().out)
        channels = payload["channels"]
        assert channels["time"]["compare"] == "RESIDUAL_LEAK"
        assert channels["cache"]["compare"] == "RESIDUAL_CACHE_LEAK"
        assert channels["power"]["compare"] in (
            "CERTIFIED_POWER_BALANCED", "RESIDUAL_POWER_LEAK"
        )
        # Back-compat: the flat map still mirrors the time channel.
        assert payload["verdicts"] == channels["time"]

    def test_channels_flag_filters_the_matrix(self, leaky_file, capsys):
        main(["lint", leaky_file, "--channels", "cache", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["channels"]) == {"cache"}
        assert "verdicts" not in payload
        rules = {d["rule"] for d in payload["diagnostics"]}
        assert "CACHE-BRANCH-SECRET" in rules
        assert "CT-BRANCH-SECRET" not in rules

    def test_text_mode_prints_all_three_channels(self, clean_file, capsys):
        assert main(["lint", clean_file]) == 0
        out = capsys.readouterr().out
        assert "time=CERTIFIED_CONSTANT_TIME" in out
        assert "cache=CERTIFIED_CACHE_INVARIANT" in out
        assert "power=CERTIFIED_POWER_BALANCED" in out

    def test_unknown_channel_is_a_usage_error(self, clean_file, capsys):
        assert main(["lint", clean_file, "--channels", "em"]) == 2
        err = capsys.readouterr().err
        assert "unknown certification channel" in err
