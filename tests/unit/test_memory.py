"""Bounds-checked memory model."""

import pytest

from repro.exec import Memory, MemorySafetyViolation
from repro.exec.memory import _GUARD_WORDS
from repro.ir.ops import WORD_BYTES


class TestBasics:
    def test_allocate_and_access(self):
        memory = Memory()
        pointer = memory.allocate("buf", 4)
        memory.store(pointer, 2, 42)
        assert memory.load(pointer, 2) == 42
        assert memory.load(pointer, 0) == 0

    def test_initializer(self):
        memory = Memory()
        pointer = memory.allocate("buf", 4, [1, 2])
        assert memory.snapshot(pointer) == [1, 2, 0, 0]

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Memory().allocate("buf", -1)

    def test_zero_size_allowed(self):
        memory = Memory()
        pointer = memory.allocate("empty", 0)
        assert memory.snapshot(pointer) == []

    def test_addresses_are_disjoint(self):
        memory = Memory()
        a = memory.allocate("a", 4)
        b = memory.allocate("b", 4)
        last_of_a = memory.address_of(a, 3)
        first_of_b = memory.address_of(b, 0)
        assert first_of_b - last_of_a > _GUARD_WORDS * WORD_BYTES // 2

    def test_in_bounds_query(self):
        memory = Memory()
        pointer = memory.allocate("buf", 2)
        assert memory.in_bounds(pointer, 0)
        assert memory.in_bounds(pointer, 1)
        assert not memory.in_bounds(pointer, 2)
        assert not memory.in_bounds(pointer, -1)


class TestStrictMode:
    def test_oob_load_raises(self):
        memory = Memory(strict=True)
        pointer = memory.allocate("buf", 2)
        with pytest.raises(MemorySafetyViolation) as excinfo:
            memory.load(pointer, 2)
        assert excinfo.value.access.kind == "load"
        assert excinfo.value.access.index == 2

    def test_oob_store_raises(self):
        memory = Memory(strict=True)
        pointer = memory.allocate("buf", 2)
        with pytest.raises(MemorySafetyViolation):
            memory.store(pointer, -1, 5)

    def test_negative_index_is_oob(self):
        memory = Memory(strict=True)
        pointer = memory.allocate("buf", 2)
        with pytest.raises(MemorySafetyViolation):
            memory.load(pointer, -1)


class TestPermissiveMode:
    def test_oob_load_returns_deterministic_garbage(self):
        memory = Memory(strict=False)
        pointer = memory.allocate("buf", 2)
        first = memory.load(pointer, 99)
        second = memory.load(pointer, 99)
        assert first == second
        assert len(memory.violations) == 2

    def test_oob_store_is_dropped(self):
        memory = Memory(strict=False)
        pointer = memory.allocate("buf", 2)
        other = memory.allocate("other", 2)
        memory.store(pointer, 2, 123)  # would land near `other` in real C
        assert memory.snapshot(other) == [0, 0]
        assert memory.violations[0].kind == "store"

    def test_violation_site_recorded(self):
        memory = Memory(strict=False)
        pointer = memory.allocate("buf", 1)
        memory.load(pointer, 5, site="f:load x")
        assert "f:load x" in str(memory.violations[0])

    def test_readonly_region_store_flagged(self):
        memory = Memory(strict=False)
        pointer = memory.allocate("table", 2, [1, 2], writable=False)
        memory.store(pointer, 0, 99)
        assert memory.snapshot(pointer) == [1, 2]
        assert len(memory.violations) == 1
