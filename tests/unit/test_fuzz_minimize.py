"""The deterministic delta-debugging shrinker.

The acceptance check: under a fixed seed a synthetic failing predicate
("the program still contains a store") must shrink to a *known* minimal
program, byte for byte, run after run — the property that makes committed
corpus reproducers stable artifacts instead of snowflakes.
"""

from repro.fuzz.generators import generate_program
from repro.fuzz.minimize import _spec_reductions, minimize_spec
from repro.fuzz.oracles import SampleInvalid, compile_sample
from repro.fuzz.spec import ReturnS, StoreS, render_program

SEED = 21

#: What the store predicate shrinks seed 21 down to (1-minimal: the store
#: needs a writable array, the array comes from the one parameter left).
MINIMAL_STORE_PROGRAM = """\
u32 fuzz_entry(secret uint *p0) {
  p0[(0) & 3] = 0;
  return 0;
}
"""


def _has_store(body) -> bool:
    for stmt in body:
        if isinstance(stmt, StoreS):
            return True
        for attr in ("then_body", "else_body", "body"):
            inner = getattr(stmt, attr, None)
            if inner and _has_store(inner):
                return True
    return False


def _store_predicate(spec) -> bool:
    try:
        compile_sample(render_program(spec))
    except SampleInvalid:
        return False
    return any(_has_store(func.body) for func in spec.functions)


def test_shrinks_to_known_minimal_program():
    spec = generate_program(SEED)
    assert _store_predicate(spec), "seed must contain a store to begin with"
    minimal, checks = minimize_spec(spec, _store_predicate)
    assert render_program(minimal) == MINIMAL_STORE_PROGRAM
    assert 0 < checks < len(render_program(spec)) * 10


def test_minimization_is_deterministic():
    spec = generate_program(SEED)
    first = minimize_spec(spec, _store_predicate)
    second = minimize_spec(spec, _store_predicate)
    assert first == second  # same minimal spec AND same check count


def test_result_is_one_minimal():
    # No single further reduction may still satisfy the predicate;
    # otherwise the "minimal" reproducer carries dead weight.
    spec = generate_program(SEED)
    minimal, _checks = minimize_spec(spec, _store_predicate)
    for candidate in _spec_reductions(minimal):
        assert not _store_predicate(candidate)


def test_trivial_predicate_shrinks_everything_away():
    spec = generate_program(12)

    def compiles(candidate) -> bool:
        try:
            compile_sample(render_program(candidate))
        except SampleInvalid:
            return False
        return True

    minimal, _checks = minimize_spec(spec, compiles)
    assert render_program(minimal) == "u32 fuzz_entry() {\n  return 0;\n}\n"


def test_budget_is_respected():
    spec = generate_program(SEED)
    _minimal, checks = minimize_spec(spec, _store_predicate, max_checks=10)
    assert checks <= 10


def test_entry_and_tail_return_survive():
    # The reducer never drops the entry function or its final return —
    # both would make every candidate invalid and stall the search.
    spec = generate_program(SEED)
    minimal, _checks = minimize_spec(spec, _store_predicate)
    assert minimal.entry == "fuzz_entry"
    assert isinstance(minimal.entry_func.body[-1], ReturnS)
