"""The benchmark harness itself: stats helpers and the artifact builder."""

import math

import pytest

from repro.bench.runner import get_artifacts, measure_cycles, repaired_inputs
from repro.bench.stats import (
    drop_outliers,
    format_table,
    geomean,
    linear_fit,
    mean,
)


class TestStats:
    def test_geomean_of_ratios(self):
        assert math.isclose(geomean([2.0, 8.0]), 4.0)

    def test_geomean_ignores_nonpositive(self):
        assert math.isclose(geomean([4.0, 0.0, -1.0]), 4.0)

    def test_geomean_empty(self):
        assert geomean([]) == 0.0

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_drop_outliers_removes_spike(self):
        samples = [10.0] * 10 + [1000.0]
        cleaned = drop_outliers(samples)
        assert 1000.0 not in cleaned
        assert len(cleaned) == 10

    def test_drop_outliers_keeps_small_samples(self):
        assert drop_outliers([1.0, 99.0]) == [1.0, 99.0]

    def test_drop_outliers_uniform_data(self):
        assert drop_outliers([5.0] * 8) == [5.0] * 8

    def test_linear_fit_exact(self):
        fit = linear_fit([1, 2, 3, 4], [3, 5, 7, 9])
        assert math.isclose(fit.slope, 2.0)
        assert math.isclose(fit.intercept, 1.0)
        assert math.isclose(fit.r_squared, 1.0)

    def test_linear_fit_rejects_degenerate(self):
        with pytest.raises(ValueError):
            linear_fit([1.0, 1.0], [2.0, 3.0])
        with pytest.raises(ValueError):
            linear_fit([1.0], [2.0])

    def test_format_table_aligns(self):
        table = format_table(["name", "value"], [["a", 1], ["long", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2


class TestArtifacts:
    def test_artifacts_cached(self):
        first = get_artifacts("otdt")
        second = get_artifacts("otdt")
        assert first is second

    def test_artifact_variants_present(self):
        artifacts = get_artifacts("otdt")
        assert artifacts.sce is not None
        assert artifacts.sce_outcome == "ok"
        assert (artifacts.repaired.instruction_count()
                >= artifacts.original.instruction_count())
        assert (artifacts.repaired_o1.instruction_count()
                <= artifacts.repaired.instruction_count())

    def test_failed_sce_reported_as_error(self):
        artifacts = get_artifacts("ctbench_modexp")
        assert artifacts.sce is None
        assert artifacts.sce_outcome == "error"
        assert "budget" in artifacts.sce_error

    def test_incorrect_sce_detected(self):
        artifacts = get_artifacts("ofdf")
        assert artifacts.sce is not None
        assert artifacts.sce_outcome == "incorrect"

    def test_measure_cycles_is_deterministic(self):
        artifacts = get_artifacts("otdt")
        inputs = repaired_inputs(
            artifacts, artifacts.bench.make_inputs(2)
        )
        first = measure_cycles(artifacts.repaired, "otdt", inputs)
        second = measure_cycles(artifacts.repaired, "otdt", inputs)
        assert first == second
