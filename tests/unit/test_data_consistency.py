"""Static data-consistency classification (paper Definition 1 / Section IV)."""

from repro.analysis import classify_data_consistency
from repro.ir import parse_module


def classify(text: str, name: str = "f", secrets=None):
    return classify_data_consistency(parse_module(text), name, secrets)


class TestClassification:
    def test_constant_indices_unconditional_is_consistent(self):
        report = classify("""
        func @f(a: ptr) {
        entry:
          x = load a[0]
          y = load a[1]
          r = mov x + y
          ret r
        }
        """)
        assert report.source_data_consistent
        assert report.repaired_data_invariant
        assert not report.inherently_inconsistent

    def test_guarded_access_breaks_source_consistency(self):
        report = classify("""
        func @f(a: ptr, c: int) {
        entry:
          p = mov c == 0
          br p, then, done
        then:
          x = load a[0]
          jmp done
        done:
          r = phi [x, then], [0, entry]
          ret r
        }
        """)
        assert not report.source_data_consistent
        # ...but repair restores data invariance: the index is a constant and
        # the array has a contract.
        assert report.repaired_data_invariant

    def test_input_indexed_access_is_inherent(self):
        report = classify("""
        func @f(a: ptr, i: int) {
        entry:
          x = load a[i]
          ret x
        }
        """)
        assert report.inherently_inconsistent
        assert not report.repaired_data_invariant

    def test_loop_counter_index_is_not_inherent(self, fig1_module):
        # After unrolling, oFdF's indices are constants.
        report = classify_data_consistency(fig1_module, "ofdf")
        assert not report.inherently_inconsistent
        assert report.repaired_data_invariant

    def test_otdf_is_inherent(self, fig1_module):
        report = classify_data_consistency(fig1_module, "otdf")
        assert report.inherently_inconsistent

    def test_pointer_params_count_as_bounded(self):
        # The repair *creates* their contracts, so no access is "unknown".
        report = classify("""
        func @f(a: ptr) {
        entry:
          x = load a[3]
          ret x
        }
        """)
        assert not report.has_unknown_bounds

    def test_unknown_join_pointer_has_unknown_bound(self):
        report = classify("""
        func @f(a: ptr, b: ptr, c: int) {
        entry:
          p = ctsel c, a, b
          x = load p[0]
          ret x
        }
        """)
        assert report.has_unknown_bounds
        assert not report.repaired_data_invariant

    def test_access_details_recorded(self):
        report = classify("""
        func @f(a: ptr, i: int) {
        entry:
          x = load a[i]
          store x, a[0]
          ret x
        }
        """)
        assert len(report.accesses) == 2
        by_desc = {a.description: a for a in report.accesses}
        assert by_desc["x = load a[i]"].input_indexed
        assert not by_desc["store x, a[0]"].input_indexed
