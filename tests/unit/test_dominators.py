"""Dominator/postdominator trees and control dependence."""

import pytest

from repro.analysis import (
    compute_control_dependence,
    compute_dominators,
    compute_postdominators,
)
from repro.ir import parse_function
from repro.ir.cfg import predecessor_map

DIAMOND = """
func @f(c: int) {
entry:
  br c, left, right
left:
  jmp join
right:
  jmp join
join:
  ret 0
}
"""

NESTED = """
func @f(c: int, d: int) {
entry:
  br c, outer_then, join
outer_then:
  br d, inner_then, inner_join
inner_then:
  jmp inner_join
inner_join:
  jmp join
join:
  ret 0
}
"""


class TestDominators:
    def test_entry_dominates_everything(self):
        tree = compute_dominators(parse_function(DIAMOND))
        for label in ("entry", "left", "right", "join"):
            assert tree.dominates("entry", label)

    def test_branch_arms_do_not_dominate_join(self):
        tree = compute_dominators(parse_function(DIAMOND))
        assert not tree.dominates("left", "join")
        assert tree.idom["join"] == "entry"

    def test_dominance_is_reflexive(self):
        tree = compute_dominators(parse_function(DIAMOND))
        assert tree.dominates("left", "left")

    def test_strict_dominance(self):
        tree = compute_dominators(parse_function(DIAMOND))
        assert tree.strictly_dominates("entry", "join")
        assert not tree.strictly_dominates("join", "join")

    def test_nested_structure(self):
        tree = compute_dominators(parse_function(NESTED))
        assert tree.idom["inner_join"] == "outer_then"
        assert tree.idom["join"] == "entry"

    def test_dominance_frontier(self):
        function = parse_function(DIAMOND)
        tree = compute_dominators(function)
        frontier = tree.dominance_frontier(predecessor_map(function))
        assert frontier["left"] == {"join"}
        assert frontier["right"] == {"join"}
        assert frontier["entry"] == set()

    def test_unknown_label_does_not_dominate(self):
        tree = compute_dominators(parse_function(DIAMOND))
        assert not tree.dominates("ghost", "join")


class TestPostdominators:
    def test_join_postdominates_arms(self):
        tree = compute_postdominators(parse_function(DIAMOND))
        assert tree is not None
        assert tree.dominates("join", "left")
        assert tree.dominates("join", "entry")

    def test_multiple_exits_unsupported(self):
        function = parse_function("""
        func @f(c: int) {
        entry:
          br c, a, b
        a:
          ret 1
        b:
          ret 2
        }
        """)
        assert compute_postdominators(function) is None


class TestControlDependence:
    def test_arms_depend_on_branch(self):
        deps = compute_control_dependence(parse_function(DIAMOND))
        assert deps["left"] == {"entry"}
        assert deps["right"] == {"entry"}
        assert deps["join"] == set()

    def test_nested_dependence_is_direct(self):
        # Ferrante-Ottenstein-Warren dependence is direct: inner_then depends
        # on the inner branch only; the transitive dependence on `entry` is
        # recovered where needed (taint analysis) by closure.
        deps = compute_control_dependence(parse_function(NESTED))
        assert deps["inner_then"] == {"outer_then"}
        assert deps["inner_join"] == {"entry"}
        assert deps["join"] == set()

    def test_requires_single_exit(self):
        function = parse_function("""
        func @f(c: int) {
        entry:
          br c, a, b
        a:
          ret 1
        b:
          ret 2
        }
        """)
        with pytest.raises(ValueError):
            compute_control_dependence(function)
