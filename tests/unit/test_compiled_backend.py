"""The compiled backend: semantics, error parity, and backend selection.

Most tests here run the same program under both backends and require not
just the same results but the same *failures* — exception type and message
— because downstream tooling (the verifiers, the CLI) matches on them.
"""

import pytest

from repro.exec import (
    CompiledExecutor,
    Interpreter,
    InterpreterError,
    MemorySafetyViolation,
    StepLimitExceeded,
    make_executor,
    resolve_backend,
)
from repro.exec.backend import BACKEND_ENV_VAR
from repro.ir import parse_module


def run(text: str, name: str, args, **kwargs):
    return CompiledExecutor(parse_module(text), **kwargs).run(name, args)


def run_both(text: str, name: str, args, **kwargs):
    """Run under both backends; assert identical observations; return the
    compiled result."""
    module = parse_module(text)
    ref = Interpreter(module, **kwargs).run(name, list(args))
    got = CompiledExecutor(module, **kwargs).run(name, list(args))
    assert got.value == ref.value
    assert got.cycles == ref.cycles
    assert got.steps == ref.steps
    assert got.arrays == ref.arrays
    assert got.global_state == ref.global_state
    assert [str(v) for v in got.violations] == [str(v) for v in ref.violations]
    return got


def error_both(text: str, name: str, args, **kwargs):
    """Both backends must raise the same exception type and message."""
    module = parse_module(text)
    with pytest.raises(Exception) as ref_info:
        Interpreter(module, **kwargs).run(name, list(args))
    with pytest.raises(Exception) as got_info:
        CompiledExecutor(module, **kwargs).run(name, list(args))
    assert type(got_info.value) is type(ref_info.value)
    assert str(got_info.value) == str(ref_info.value)
    return got_info


class TestSemantics:
    def test_arithmetic_and_return(self):
        result = run_both(
            "func @f(a: int, b: int) { entry: x = mov a * b ret x + 1 }",
            "f", [6, 7],
        )
        assert result.value == 43

    def test_wrapping_matches_interpreter(self):
        # Register values may be raw (unwrapped) ints loaded from memory;
        # fused arithmetic must wrap exactly where eval_binop wraps.
        result = run_both("""
        func @f(a: ptr) {
        entry:
          x = load a[0]
          y = mov x + 1
          z = mov y & x
          w = mov z >> 1
          c = mov x < y
          store w, a[0]
          ret c
        }
        """, "f", [[2**63 - 1]])
        assert isinstance(result.value, int)

    def test_division_and_modulo(self):
        result = run_both("""
        func @f(a: int, b: int) {
        entry:
          q = mov a / b
          r = mov a % b
          z = mov a / 0
          qs = mov q * 1000
          rs = mov r * 10
          t = mov qs + rs
          ret t + z
        }
        """, "f", [-7, 2])
        # C semantics: truncation toward zero; division by zero yields 0.
        assert result.value == -3010

    def test_phi_parallel_evaluation(self):
        result = run_both("""
        func @f(n: int) {
        entry:
          jmp body
        body:
          a = phi [1, entry]
          b = phi [2, entry]
          jmp swap
        swap:
          x = phi [b, body]
          y = phi [a, body]
          r = mov x * 10
          ret r + y
        }
        """, "f", [0])
        assert result.value == 21

    def test_branch_ctsel_alloc(self):
        result = run_both("""
        func @f(c: int) {
        entry:
          buf = alloc 2
          x = ctsel c, 10, 20
          store x, buf[0]
          br c, yes, no
        yes:
          jmp done
        no:
          jmp done
        done:
          r = phi [1, yes], [2, no]
          y = load buf[0]
          ret r + y
        }
        """, "f", [1])
        assert result.value == 11

    def test_calls_and_globals(self):
        result = run_both("""
        global @g[2]
        func @helper(v: int) {
        entry:
          store v, g[1]
          ret v + 1
        }
        func @f(v: int) {
        entry:
          x = call @helper(v)
          y = load g[1]
          ret x + y
        }
        """, "f", [9])
        assert result.value == 19

    def test_argument_word_wrapping(self):
        assert run_both("func @f(a: int) { entry: ret a }",
                        "f", [2**64 + 5]).value == 5

    def test_unary_operators(self):
        result = run_both("""
        func @f(a: int) {
        entry:
          x = mov -a
          y = mov ~a
          z = mov !a
          t = mov x + y
          ret t + z
        }
        """, "f", [3])
        assert result.value == -7


class TestTraceParity:
    def test_instruction_and_memory_traces(self):
        text = """
        func @f(a: ptr) {
        entry:
          x = load a[1]
          store x, a[0]
          ret x
        }
        """
        module = parse_module(text)
        ref = Interpreter(module).run("f", [[5, 6]])
        got = CompiledExecutor(module).run("f", [[5, 6]])
        assert got.trace.operation_signature() == ref.trace.operation_signature()
        assert got.trace.memory == ref.trace.memory

    def test_call_sites_interleave_like_interpreter(self):
        # The callee's sites must appear between the call site and the
        # caller's subsequent instructions, exactly as the interpreter
        # records them step by step.
        text = """
        func @inner(v: int) { entry: x = mov v + 1 ret x }
        func @f(v: int) {
        entry:
          a = call @inner(v)
          b = call @inner(a)
          ret b
        }
        """
        module = parse_module(text)
        ref = Interpreter(module).run("f", [1])
        got = CompiledExecutor(module).run("f", [1])
        assert got.trace.operation_signature() == ref.trace.operation_signature()

    def test_no_trace_mode_has_no_trace(self):
        result = run("func @f() { entry: ret 0 }", "f", [],
                     record_trace=False)
        assert result.trace is None


class TestErrorParity:
    def test_wrong_arity(self):
        info = error_both("func @f(a: int) { entry: ret a }", "f", [])
        assert "expects" in str(info.value)

    def test_pointer_arithmetic_rejected(self):
        error_both("func @f(a: ptr) { entry: x = mov a + 1 ret x }",
                   "f", [[1]])

    def test_pointer_equality_allowed(self):
        result = run_both("func @f(a: ptr) { entry: x = mov a == a ret x }",
                          "f", [[1]])
        assert result.value == 1

    def test_returning_pointer_rejected(self):
        error_both("func @f(a: ptr) { entry: xp = mov a ret xp }",
                   "f", [[1]])

    def test_undefined_variable(self):
        error_both("""
        func @f(c: int) {
        entry:
          br c, use, skip
        use:
          x = mov 1
          jmp done
        skip:
          jmp done
        done:
          y = mov x + 1
          ret y
        }
        """, "f", [0])

    def test_strict_oob_raises_same_violation(self):
        info = error_both("func @f(a: ptr) { entry: x = load a[5] ret x }",
                          "f", [[1]])
        assert isinstance(info.value, MemorySafetyViolation)

    def test_permissive_oob_recorded(self):
        result = run_both("func @f(a: ptr) { entry: x = load a[5] ret 0 }",
                          "f", [[1]], strict_memory=False)
        assert len(result.violations) == 1

    def test_step_limit(self):
        module = parse_module("func @f() { entry: jmp entry }")
        with pytest.raises(StepLimitExceeded):
            CompiledExecutor(module, max_steps=100).run("f", [])

    def test_recursion_depth_limit(self):
        module = parse_module("""
        func @f(n: int) {
        entry:
          x = call @f(n)
          ret x
        }
        """)
        with pytest.raises(InterpreterError, match="depth"):
            CompiledExecutor(module).run("f", [1])

    def test_branch_condition_pointer(self):
        error_both("""
        func @f(a: ptr) {
        entry:
          br a, yes, no
        yes:
          jmp done
        no:
          jmp done
        done:
          ret 0
        }
        """, "f", [[1]])

    def test_store_pointer_rejected(self):
        error_both("""
        func @f(a: ptr, b: ptr) {
        entry:
          store b, a[0]
          ret 0
        }
        """, "f", [[1], [2]])

    def test_unknown_function(self):
        module = parse_module("func @f() { entry: ret 0 }")
        with pytest.raises(KeyError):
            CompiledExecutor(module).run("nope", [])


class TestBackendSelection:
    def test_make_executor_compiled_default(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        module = parse_module("func @f() { entry: ret 1 }")
        executor = make_executor(module)
        assert isinstance(executor, CompiledExecutor)
        assert executor.run("f", []).value == 1

    def test_make_executor_interp(self):
        module = parse_module("func @f() { entry: ret 1 }")
        executor = make_executor(module, backend="interp")
        assert isinstance(executor, Interpreter)

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "interp")
        assert resolve_backend(None) == "interp"
        monkeypatch.setenv(BACKEND_ENV_VAR, "compiled")
        assert resolve_backend(None) == "compiled"

    def test_explicit_backend_overrides_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "interp")
        assert resolve_backend("compiled") == "compiled"

    def test_unknown_backend_rejected(self):
        module = parse_module("func @f() { entry: ret 1 }")
        with pytest.raises(ValueError):
            make_executor(module, backend="jit")

    def test_invalid_env_var_rejected(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "turbo")
        with pytest.raises(ValueError):
            resolve_backend(None)
