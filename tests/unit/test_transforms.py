"""Preprocessing: single return, acyclicity, recursion, call ordering."""

import pytest

from repro.exec import Interpreter
from repro.ir import parse_function, parse_module, validate_module
from repro.ir.instructions import Phi, Ret
from repro.transforms import (
    PreprocessError,
    call_topological_order,
    ensure_single_return,
    preprocess_function,
    preprocess_module,
)


class TestSingleReturn:
    def test_already_single_untouched(self):
        function = parse_function("func @f() { entry: ret 0 }")
        assert not ensure_single_return(function)

    def test_two_returns_merged_via_phi(self):
        module = parse_module("""
        func @f(c: int) {
        entry:
          br c, a, b
        a:
          ret 1
        b:
          ret 2
        }
        """)
        function = module.function("f")
        assert ensure_single_return(function)
        rets = [b for b in function.blocks.values()
                if isinstance(b.terminator, Ret)]
        assert len(rets) == 1
        (exit_block,) = rets
        assert isinstance(exit_block.instructions[0], Phi)
        validate_module(module)
        interp = Interpreter(module)
        assert interp.run("f", [1]).value == 1
        assert interp.run("f", [0]).value == 2

    def test_expression_returns_materialised(self):
        module = parse_module("""
        func @f(c: int, x: int) {
        entry:
          br c, a, b
        a:
          ret x + 1
        b:
          ret x * 2
        }
        """)
        function = module.function("f")
        ensure_single_return(function)
        validate_module(module)
        interp = Interpreter(module)
        assert interp.run("f", [1, 10]).value == 11
        assert interp.run("f", [0, 10]).value == 20

    def test_function_without_return_rejected(self):
        function = parse_function("""
        func @f() {
        entry:
          jmp entry
        }
        """)
        with pytest.raises(ValueError, match="no return"):
            ensure_single_return(function)


class TestPreprocess:
    def test_unreachable_blocks_removed(self):
        module = parse_module("""
        func @f() {
        entry:
          ret 0
        dead:
          ret 1
        }
        """)
        report = preprocess_function(module.function("f"), module)
        assert report.unreachable_blocks_removed == 1

    def test_loop_rejected_with_pointer_to_paper(self):
        module = parse_module("""
        func @f(c: int) {
        entry:
          jmp head
        head:
          br c, head, out
        out:
          ret 0
        }
        """)
        with pytest.raises(PreprocessError, match="unroll"):
            preprocess_module(module)

    def test_mutual_recursion_rejected(self):
        module = parse_module("""
        func @even(n: int) {
        entry:
          x = call @odd(n)
          ret x
        }
        func @odd(n: int) {
        entry:
          x = call @even(n)
          ret x
        }
        """)
        with pytest.raises(PreprocessError, match="recursive"):
            preprocess_module(module)

    def test_call_topological_order_callees_first(self):
        module = parse_module("""
        func @top(n: int) {
        entry:
          x = call @mid(n)
          ret x
        }
        func @mid(n: int) {
        entry:
          x = call @leaf(n)
          ret x
        }
        func @leaf(n: int) { entry: ret n }
        """)
        order = call_topological_order(module)
        assert order.index("leaf") < order.index("mid") < order.index("top")
