"""Optimisation passes: each in isolation, then the pipeline."""

import pytest

from repro.exec import Interpreter
from repro.ir import Const, parse_function, parse_module, validate_module
from repro.ir.instructions import BinExpr, Br, CtSel, Jmp, Load, Mov, Store
from repro.opt import (
    constant_fold,
    eliminate_common_subexpressions,
    eliminate_dead_code,
    optimize,
    propagate_copies,
    simplify_algebraic,
    simplify_cfg,
)


def instructions_of(function):
    return [i for _, i in function.iter_instructions()]


class TestConstFold:
    def test_binary_folding(self):
        function = parse_function(
            "func @f() { entry: x = mov 2 + 3 ret x }"
        )
        assert constant_fold(function)
        assert function.entry.instructions[0] == Mov("x", Const(5))

    def test_unary_folding(self):
        function = parse_function("func @f() { entry: x = mov ! 0 ret x }")
        constant_fold(function)
        assert function.entry.instructions[0] == Mov("x", Const(1))

    def test_ctsel_with_constant_condition(self):
        function = parse_function(
            "func @f(a: int, b: int) { entry: x = ctsel 1, a, b ret x }"
        )
        constant_fold(function)
        assert function.entry.instructions[0] == Mov("x", Const(0)) or \
            function.entry.instructions[0].expr.name == "a"

    def test_ret_expression_folds(self):
        function = parse_function("func @f() { entry: ret 2 * 21 }")
        constant_fold(function)
        assert function.entry.terminator.expr == Const(42)

    def test_wrapping_fold(self):
        function = parse_function(
            "func @f() { entry: x = mov 9223372036854775807 + 1 ret x }"
        )
        constant_fold(function)
        assert function.entry.instructions[0].expr == Const(-(1 << 63))

    def test_no_change_reports_false(self):
        function = parse_function("func @f(a: int) { entry: x = mov a ret x }")
        assert not constant_fold(function)


class TestSimplify:
    @pytest.mark.parametrize("expr,expected", [
        ("a + 0", "a"), ("0 + a", "a"), ("a - 0", "a"), ("a - a", "0"),
        ("a * 1", "a"), ("a * 0", "0"), ("a / 1", "a"),
        ("a & 0", "0"), ("a & a", "a"), ("a | 0", "a"), ("a | a", "a"),
        ("a ^ 0", "a"), ("a ^ a", "0"), ("a << 0", "a"), ("a >> 0", "a"),
        ("a == a", "1"), ("a != a", "0"), ("a <= a", "1"), ("a < a", "0"),
    ])
    def test_identities(self, expr, expected):
        function = parse_function(
            f"func @f(a: int) {{ entry: x = mov {expr} ret x }}"
        )
        simplify_algebraic(function)
        assert str(function.entry.instructions[0].expr) == expected

    def test_boolean_or_true_collapses(self):
        # b is known boolean (comparison result): b | 1 == 1.
        function = parse_function("""
        func @f(a: int) {
        entry:
          b = mov a < 5
          x = mov b | 1
          ret x
        }
        """)
        simplify_algebraic(function)
        assert str(function.entry.instructions[1].expr) == "1"

    def test_non_boolean_or_one_untouched(self):
        function = parse_function("""
        func @f(a: int) {
        entry:
          x = mov a | 1
          ret x
        }
        """)
        simplify_algebraic(function)
        assert str(function.entry.instructions[0].expr) == "a | 1"

    def test_ctsel_same_arms(self):
        function = parse_function(
            "func @f(c: int, v: int) { entry: x = ctsel c, v, v ret x }"
        )
        simplify_algebraic(function)
        assert function.entry.instructions[0] == Mov("x", parse_function(
            "func @g(v: int) { entry: ret v }").entry.terminator.expr)

    def test_boolean_ctsel_one_zero_is_identity(self):
        function = parse_function("""
        func @f(a: int) {
        entry:
          b = mov a != 0
          x = ctsel b, 1, 0
          ret x
        }
        """)
        simplify_algebraic(function)
        assert str(function.entry.instructions[1]) == "x = mov b"


class TestCopyProp:
    def test_copies_propagate_to_uses(self):
        function = parse_function("""
        func @f(a: int) {
        entry:
          x = mov a
          y = mov x + 1
          ret y
        }
        """)
        propagate_copies(function)
        assert str(function.entry.instructions[1].expr) == "a + 1"

    def test_chains_resolve(self):
        function = parse_function("""
        func @f() {
        entry:
          x = mov 7
          y = mov x
          z = mov y
          ret z
        }
        """)
        propagate_copies(function)
        assert function.entry.terminator.expr == Const(7)


class TestCSE:
    def test_duplicate_expression_merged(self):
        function = parse_function("""
        func @f(a: int, b: int) {
        entry:
          x = mov a + b
          y = mov a + b
          r = mov x ^ y
          ret r
        }
        """)
        eliminate_common_subexpressions(function)
        assert str(function.entry.instructions[2].expr) == "x ^ x"

    def test_commutative_normalisation(self):
        function = parse_function("""
        func @f(a: int, b: int) {
        entry:
          x = mov a + b
          y = mov b + a
          r = mov x ^ y
          ret r
        }
        """)
        eliminate_common_subexpressions(function)
        assert str(function.entry.instructions[2].expr) == "x ^ x"

    def test_loads_never_merged(self):
        function = parse_function("""
        func @f(a: ptr) {
        entry:
          x = load a[0]
          y = load a[0]
          r = mov x + y
          ret r
        }
        """)
        assert not eliminate_common_subexpressions(function)

    def test_only_dominating_definitions_reused(self):
        function = parse_function("""
        func @f(a: int, c: int) {
        entry:
          br c, l, r
        l:
          x = mov a + 1
          jmp join
        r:
          y = mov a + 1
          jmp join
        join:
          p = phi [x, l], [y, r]
          ret p
        }
        """)
        # Neither arm dominates the other: no merge is legal.
        assert not eliminate_common_subexpressions(function)


class TestDCE:
    def test_unused_mov_removed(self):
        function = parse_function("""
        func @f(a: int) {
        entry:
          dead = mov a + 1
          ret a
        }
        """)
        eliminate_dead_code(function)
        assert function.entry.instructions == []

    def test_transitively_dead_chain_removed(self):
        function = parse_function("""
        func @f(a: int) {
        entry:
          t1 = mov a + 1
          t2 = mov t1 + 1
          ret a
        }
        """)
        eliminate_dead_code(function)
        assert function.entry.instructions == []

    def test_dead_load_removed(self):
        function = parse_function("""
        func @f(a: ptr) {
        entry:
          dead = load a[0]
          ret 0
        }
        """)
        eliminate_dead_code(function)
        assert function.entry.instructions == []

    def test_stores_and_calls_kept(self):
        module = parse_module("""
        func @g() { entry: ret 0 }
        func @f(a: ptr) {
        entry:
          store 1, a[0]
          unused = call @g()
          ret 0
        }
        """)
        function = module.function("f")
        eliminate_dead_code(function)
        kinds = [type(i).__name__ for i in function.entry.instructions]
        assert kinds == ["Store", "Call"]


class TestSimplifyCFG:
    def test_constant_branch_folds(self):
        function = parse_function("""
        func @f() {
        entry:
          br 1, yes, no
        yes:
          ret 1
        no:
          ret 2
        }
        """)
        simplify_cfg(function)
        assert list(function.blocks) == ["entry"]
        assert function.entry.terminator.expr == Const(1)

    def test_straight_line_chain_merges(self):
        function = parse_function("""
        func @f() {
        entry:
          x = mov 1
          jmp mid
        mid:
          y = mov x + 1
          jmp end
        end:
          ret y
        }
        """)
        simplify_cfg(function)
        assert list(function.blocks) == ["entry"]

    def test_merge_converts_phis_to_movs(self):
        function = parse_function("""
        func @f() {
        entry:
          jmp next
        next:
          x = phi [3, entry]
          ret x
        }
        """)
        simplify_cfg(function)
        assert str(function.entry.instructions[0]) == "x = mov 3"

    def test_phi_labels_updated_after_merge(self):
        function = parse_function("""
        func @f(c: int) {
        entry:
          br c, pre, other
        pre:
          x = mov 1
          jmp mid
        mid:
          y = mov x + 1
          jmp join
        other:
          jmp join
        join:
          r = phi [y, mid], [0, other]
          ret r
        }
        """)
        simplify_cfg(function)
        validate_module_of(function)

    def test_equal_branch_targets_fold(self):
        function = parse_function("""
        func @f(c: int) {
        entry:
          br c, next, next
        next:
          ret 0
        }
        """)
        simplify_cfg(function)
        # The fold turns br into jmp, and the merge pass then absorbs the
        # target entirely.
        assert list(function.blocks) == ["entry"]
        assert function.entry.terminator.expr == Const(0)


def validate_module_of(function):
    from repro.ir import Module, validate_module

    module = Module()
    module.add_function(function)
    validate_module(module)


class TestPipeline:
    def test_optimize_preserves_semantics(self, fig1_module):
        optimized = optimize(fig1_module)
        validate_module(optimized)
        interp_a = Interpreter(fig1_module)
        interp_b = Interpreter(optimized)
        for a, b in [([1, 2], [1, 2]), ([1, 2], [3, 4]), ([5, 5], [5, 6])]:
            for name in ("ofdf", "ofdt", "otdt"):
                assert (
                    interp_a.run(name, [list(a), list(b)]).value
                    == interp_b.run(name, [list(a), list(b)]).value
                ), name

    def test_level_zero_is_identity(self, fig1_module):
        untouched = optimize(fig1_module, level=0)
        assert str(untouched) == str(fig1_module)

    def test_optimize_does_not_mutate_input(self, fig1_module):
        before = str(fig1_module)
        optimize(fig1_module)
        assert str(fig1_module) == before

    def test_repaired_code_shrinks_substantially(self, ofdf_module):
        from repro.core import repair_module

        repaired = repair_module(ofdf_module)
        optimized = optimize(repaired)
        assert optimized.instruction_count() < repaired.instruction_count()

    def test_optimized_repaired_code_stays_isochronous(self, ofdf_module):
        from repro.core import repair_module
        from repro.verify import check_invariance

        optimized = optimize(repair_module(ofdf_module))
        report = check_invariance(
            optimized, "ofdf",
            [[[1, 2], 2, [1, 2], 2], [[3, 4], 2, [9, 9], 2]],
        )
        assert report.operation_invariant
        assert report.data_invariant
        assert report.memory_safe
