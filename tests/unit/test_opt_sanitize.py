"""The per-pass leakage sanitizer (``REPRO_OPT_SANITIZE``)."""

import pytest

from repro.ir import parse_module
from repro.opt import (
    SANITIZE_ENV_VAR,
    LeakFingerprint,
    LeakSanitizerError,
    sanitize_enabled,
)
from repro.opt.pipeline import optimize, optimize_function

# A branch-free selection (what the repair emits)...
CLEAN = """
func @f(k: int) {
entry:
  p = mov k < 0
  r = ctsel p, 1, 2
  ret r
}
"""

# ...and the secret-steered branch a broken pass would rewrite it into.
LEAKY = """
func @f(k: int) {
entry:
  p = mov k < 0
  br p, a, b
a:
  jmp b
b:
  r = phi [1, a], [2, entry]
  ret r
}
"""

SBOX = """
const global @sbox[256]
func @f(k: int) {
entry:
  i = mov k & 255
  x = load sbox[i]
  ret x
}
"""


def replace_body(function, text):
    donor = parse_module(text).functions[function.name]
    function.blocks = donor.blocks
    function.params = donor.params


class TestFingerprint:
    def test_counts_branches_and_indices(self):
        clean = parse_module(CLEAN).functions["f"]
        leaky = parse_module(LEAKY).functions["f"]
        sbox = parse_module(SBOX).functions["f"]
        assert LeakFingerprint.of(clean) == LeakFingerprint(0, 0)
        assert LeakFingerprint.of(leaky) == LeakFingerprint(1, 0)
        assert LeakFingerprint.of(sbox) == LeakFingerprint(0, 1)


class TestCatchesLeakyPass:
    def test_branch_introducing_pass_is_named(self):
        module = parse_module(CLEAN)
        function = module.functions["f"]

        def deoptimize(fn):
            replace_body(fn, LEAKY)
            return True

        with pytest.raises(LeakSanitizerError) as exc:
            optimize_function(
                function,
                passes=(("deoptimize", deoptimize),),
                sanitize=True,
                module=module,
            )
        assert exc.value.pass_name == "deoptimize"
        assert exc.value.diagnostic.rule == "OPT-LEAK-BRANCH"
        assert "deoptimize" in str(exc.value)
        assert "deoptimize" in exc.value.diagnostic.fixit

    def test_index_introducing_pass_is_named(self):
        module = parse_module("const global @sbox[256]\n" + CLEAN)
        function = module.functions["f"]

        def tableize(fn):
            replace_body(fn, SBOX)
            return True

        with pytest.raises(LeakSanitizerError) as exc:
            optimize_function(
                function,
                passes=(("tableize", tableize),),
                sanitize=True,
                module=module,
            )
        assert exc.value.pass_name == "tableize"
        assert exc.value.diagnostic.rule == "OPT-LEAK-INDEX"

    def test_ssa_breaking_pass_is_named(self):
        module = parse_module(CLEAN)
        function = module.functions["f"]

        def truncate(fn):
            fn.entry.terminator = None
            return True

        with pytest.raises(LeakSanitizerError) as exc:
            optimize_function(
                function,
                passes=(("truncate", truncate),),
                sanitize=True,
                module=module,
            )
        assert exc.value.pass_name == "truncate"
        assert exc.value.diagnostic.rule == "OPT-SSA-BROKEN"

    def test_no_change_pass_skips_the_check(self):
        # A pass reporting no change is never re-analysed, even if the
        # function already contains a leak.
        module = parse_module(LEAKY)
        function = module.functions["f"]
        fired = optimize_function(
            function,
            passes=(("noop", lambda fn: False),),
            sanitize=True,
            module=module,
        )
        assert fired == []


class TestCleanPipeline:
    def test_real_pipeline_passes_under_sanitizer(self):
        from repro.core.repair import repair_module

        module = parse_module(LEAKY)
        repaired = repair_module(module)
        optimized = optimize(repaired, sanitize=True)
        assert set(optimized.functions) == set(repaired.functions)

    def test_env_var_gates_default(self, monkeypatch):
        monkeypatch.delenv(SANITIZE_ENV_VAR, raising=False)
        assert not sanitize_enabled()
        monkeypatch.setenv(SANITIZE_ENV_VAR, "0")
        assert not sanitize_enabled()
        monkeypatch.setenv(SANITIZE_ENV_VAR, "1")
        assert sanitize_enabled()


# Balanced select (arms 1 and 2, equal Hamming weight)...
BALANCED_SEL = """
func @f(k: int) {
entry:
  p = mov k < 0
  r = ctsel p, 1, 2
  ret r
}
"""

# ...rewritten with imbalanced constant arms (weights 8 vs 0).
IMBALANCED_SEL = """
func @f(k: int) {
entry:
  p = mov k < 0
  r = ctsel p, 255, 0
  ret r
}
"""

# Variable arms: not provably balanced, counted the same before and
# after a pass folds one arm to a constant.
VAR_ARM_SEL = """
func @f(k: int, x: int) {
entry:
  p = mov k < 0
  y = mov x + 0
  r = ctsel p, y, 0
  ret r
}
"""

FOLDED_ARM_SEL = """
func @f(k: int, x: int) {
entry:
  p = mov k < 0
  r = ctsel p, 255, 0
  ret r
}
"""


class TestPowerFingerprint:
    def test_imbalance_introducing_pass_is_named(self):
        module = parse_module(BALANCED_SEL)
        function = module.functions["f"]

        def imbalance(fn):
            replace_body(fn, IMBALANCED_SEL)
            return True

        with pytest.raises(LeakSanitizerError) as exc:
            optimize_function(
                function,
                passes=(("imbalance", imbalance),),
                sanitize=True,
                module=module,
            )
        assert exc.value.pass_name == "imbalance"
        assert exc.value.diagnostic.rule == "OPT-LEAK-POWER"

    def test_constant_folding_an_arm_is_not_a_violation(self):
        # Folding a variable arm to an imbalanced constant only *reveals*
        # a potential imbalance the fingerprint already counted.
        module = parse_module(VAR_ARM_SEL)
        function = module.functions["f"]
        before = LeakFingerprint.of(function)
        assert before.ctsel_imbalances == 1

        def fold(fn):
            replace_body(fn, FOLDED_ARM_SEL)
            return True

        fired = optimize_function(
            function,
            passes=(("fold", fold),),
            sanitize=True,
            module=module,
        )
        assert "fold" in fired
        assert LeakFingerprint.of(function).ctsel_imbalances == 1

    def test_guard_selects_are_not_counted(self):
        module = parse_module("""
        func @f(k: int) {
        entry:
          p = mov k < 0
          r = ctsel p, 255, 0, guard
          ret r
        }
        """)
        fingerprint = LeakFingerprint.of(module.functions["f"])
        assert fingerprint.ctsel_imbalances == 0
