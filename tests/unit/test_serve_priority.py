"""Unit tests of priority classes: DRR weights, starvation freedom."""

import asyncio

from repro.serve.server import WeightedQueue, parse_class_weights


class TestParseClassWeights:
    def test_basic(self):
        assert parse_class_weights("gold=4,normal=1") == {
            "gold": 4, "normal": 1,
        }

    def test_malformed_entries_are_ignored(self):
        assert parse_class_weights("gold=4,broken,=2,x=zero,neg=-1") == {
            "gold": 4,
        }

    def test_empty(self):
        assert parse_class_weights(None) == {}
        assert parse_class_weights("") == {}


class TestWeightedQueue:
    def test_fifo_within_one_class(self):
        async def run():
            queue = WeightedQueue()
            for i in range(5):
                queue.put_nowait(i, "normal")
            return [await queue.get() for _ in range(5)]

        assert asyncio.run(run()) == [0, 1, 2, 3, 4]

    def test_weights_split_slots_proportionally(self):
        async def run():
            queue = WeightedQueue({"gold": 3, "normal": 1})
            for i in range(12):
                queue.put_nowait(("gold", i), "gold")
                queue.put_nowait(("normal", i), "normal")
            return [await queue.get() for _ in range(8)]

        served = asyncio.run(run())
        gold = sum(1 for cls, _ in served if cls == "gold")
        assert gold == 6  # two full cycles: 3 gold + 1 normal each

    def test_low_weight_class_is_never_starved(self):
        async def run():
            queue = WeightedQueue({"gold": 7, "normal": 1})
            for i in range(64):
                queue.put_nowait(("gold", i), "gold")
            for i in range(8):
                queue.put_nowait(("normal", i), "normal")
            return [await queue.get() for _ in range(64)]

        served = asyncio.run(run())
        # Every full DRR cycle (8 pops at weights 7+1) serves the
        # weight-1 class at least once — no starvation window.
        for start in range(0, 64, 8):
            cycle = served[start:start + 8]
            assert any(cls == "normal" for cls, _ in cycle), (
                f"normal starved in cycle at {start}: {cycle}"
            )

    def test_credit_does_not_bank_across_idle_cycles(self):
        async def run():
            queue = WeightedQueue({"gold": 5})
            # Gold drains alone (accumulating would-be credit)...
            for i in range(10):
                queue.put_nowait(("gold", i), "gold")
            first = [await queue.get() for _ in range(10)]
            # ...then a fresh contender arrives: it must be served
            # within one cycle, not after any banked gold credit.
            queue.put_nowait(("late", 0), "late")
            queue.put_nowait(("gold", 10), "gold")
            second = [await queue.get() for _ in range(2)]
            return first, second

        _, second = asyncio.run(run())
        assert ("late", 0) in second

    def test_unknown_class_defaults_to_weight_one(self):
        queue = WeightedQueue({"gold": 4})
        assert queue.weight_of("gold") == 4
        assert queue.weight_of("never-seen") == 1

    def test_control_items_bypass_classes(self):
        async def run():
            queue = WeightedQueue({"gold": 4})
            stop = object()
            for i in range(4):
                queue.put_nowait(i, "gold")
            queue.put_control(stop)
            return await queue.get(), stop

        got, stop = asyncio.run(run())
        assert got is stop

    def test_served_counts_are_tracked(self):
        async def run():
            queue = WeightedQueue({"gold": 2})
            queue.put_nowait("a", "gold")
            queue.put_nowait("b", "normal")
            await queue.get()
            await queue.get()
            return dict(queue.served)

        served = asyncio.run(run())
        assert sum(served.values()) == 2

    def test_get_blocks_until_put(self):
        async def run():
            queue = WeightedQueue()
            waiter = asyncio.create_task(queue.get())
            await asyncio.sleep(0.01)
            assert not waiter.done()
            queue.put_nowait("item", "normal")
            return await asyncio.wait_for(waiter, timeout=5)

        assert asyncio.run(run()) == "item"
