"""Symbolic array-size analysis (Paisante-style, paper Section III-C2)."""

from repro.analysis import infer_array_sizes, size_at_call_site
from repro.ir import Const, Var, parse_module
from repro.ir.instructions import BinExpr


def sizes_of(text: str, name: str = "f", contracts=None):
    module = parse_module(text)
    return infer_array_sizes(module, module.function(name), contracts)


class TestSources:
    def test_global_has_constant_size(self):
        sizes = sizes_of("""
        global @tab[16]
        func @f() {
        entry:
          x = load tab[0]
          ret x
        }
        """)
        assert sizes["tab"] == Const(16)

    def test_alloc_size_is_symbolic(self):
        sizes = sizes_of("""
        func @f(n: int) {
        entry:
          buf = alloc n + 1
          ret 0
        }
        """)
        assert sizes["buf"] == BinExpr("+", Var("n"), Const(1))

    def test_param_without_contract_is_unknown(self):
        sizes = sizes_of("func @f(a: ptr) { entry: ret 0 }")
        assert sizes["a"] is None

    def test_param_with_contract_uses_length_param(self):
        sizes = sizes_of(
            "func @f(a: ptr, a_n: int) { entry: ret 0 }",
            contracts={"a": "a_n"},
        )
        assert sizes["a"] == Var("a_n")

    def test_pointer_copy_propagates_size(self):
        sizes = sizes_of("""
        func @f() {
        entry:
          buf = alloc 8
          alias = mov buf
          ret 0
        }
        """)
        assert sizes["alias"] == Const(8)


class TestJoins:
    def test_ctsel_of_equal_sizes_keeps_size(self):
        sizes = sizes_of("""
        func @f(c: int) {
        entry:
          a = alloc 4
          b = alloc 4
          p = ctsel c, a, b
          ret 0
        }
        """)
        assert sizes["p"] == Const(4)

    def test_ctsel_of_constant_sizes_takes_minimum(self):
        sizes = sizes_of("""
        func @f(c: int) {
        entry:
          a = alloc 4
          b = alloc 8
          p = ctsel c, a, b
          ret 0
        }
        """)
        assert sizes["p"] == Const(4)

    def test_join_with_unknown_is_unknown(self):
        sizes = sizes_of("""
        func @f(c: int, q: ptr) {
        entry:
          a = alloc 4
          p = ctsel c, a, q
          ret 0
        }
        """)
        assert sizes["p"] is None

    def test_phi_join(self):
        sizes = sizes_of("""
        func @f(c: int) {
        entry:
          a = alloc 4
          b = alloc 4
          br c, l, r
        l:
          jmp join
        r:
          jmp join
        join:
          p = phi [a, l], [b, r]
          ret 0
        }
        """)
        assert sizes["p"] == Const(4)


class TestCallSites:
    def test_size_at_call_site_for_known_pointer(self):
        sizes = {"buf": Const(8)}
        assert size_at_call_site(sizes, Var("buf")) == Const(8)

    def test_size_at_call_site_for_unknown(self):
        assert size_at_call_site({}, Var("mystery")) is None
        assert size_at_call_site({}, Const(0)) is None
