"""Tests for the observability collector (satellite: collector coverage).

Covers the ISSUE 3 checklist: counter/timer/span semantics, the JSONL
round-trip, disabled-mode no-op behaviour, and cross-process metric
aggregation through ``build_many``.
"""

import json
import os
from unittest import mock

from repro.artifacts import ArtifactStore, build_many
from repro.bench.runner import build_request
from repro.bench.suite import get_benchmark
from repro.obs import (
    OBS,
    TRACE_ENV_VAR,
    TRACE_FILE_ENV_VAR,
    Collector,
    configure,
    read_events,
)


class TestCounters:
    def test_counter_accumulates(self):
        collector = Collector(enabled=True)
        collector.counter("a.b", 2)
        collector.counter("a.b")
        collector.counter("a.c", 0.5)
        assert collector.counters == {"a.b": 3, "a.c": 0.5}

    def test_counter_disabled_records_nothing(self):
        collector = Collector(enabled=False)
        collector.counter("a.b", 7)
        assert collector.counters == {}


class TestCapture:
    def test_capture_reports_counter_deltas(self):
        collector = Collector(enabled=True)
        collector.counter("a.b", 5)
        with collector.capture() as window:
            collector.counter("a.b", 2)
            collector.counter("a.c", 1)
        assert window.counters == {"a.b": 2, "a.c": 1}
        assert collector.counters["a.b"] == 7  # campaign totals untouched

    def test_capture_force_enables_disabled_collector(self):
        collector = Collector(enabled=False)
        with collector.capture(force=True) as window:
            assert collector.enabled
            collector.counter("x", 3)
        assert not collector.enabled
        assert window.counters == {"x": 3}

    def test_forced_capture_truncates_events(self):
        collector = Collector(enabled=False)
        with collector.capture(force=True):
            collector.event("noise", detail=1)
        # Forced windows must not grow the event log of a collector the
        # user left disabled (long campaigns would leak memory).
        assert collector.events == []

    def test_unforced_capture_keeps_events(self):
        collector = Collector(enabled=True)
        with collector.capture():
            collector.event("kept")
        assert [e["event"] for e in collector.events] == ["kept"]


class TestSpans:
    def test_span_times_into_timer(self):
        collector = Collector(enabled=True)
        with collector.span("stage.x", item="one"):
            pass
        with collector.span("stage.x", item="two"):
            pass
        count, seconds = collector.timers["stage.x"]
        assert count == 2
        assert seconds >= 0.0

    def test_span_emits_event_with_fields(self):
        collector = Collector(enabled=True)
        with collector.span("stage.y", benchmark="tea"):
            pass
        [event] = collector.events
        assert event["event"] == "span"
        assert event["name"] == "stage.y"
        assert event["benchmark"] == "tea"
        assert event["pid"] == os.getpid()
        assert event["seconds"] >= 0.0

    def test_span_records_even_when_body_raises(self):
        collector = Collector(enabled=True)
        try:
            with collector.span("stage.z"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert collector.timers["stage.z"][0] == 1

    def test_disabled_span_is_the_shared_null_singleton(self):
        collector = Collector(enabled=False)
        first = collector.span("a")
        second = collector.span("b", field=1)
        assert first is second  # no per-call allocation when disabled
        with first:
            pass
        assert collector.timers == {}
        assert collector.events == []


class TestEventsAndJsonl:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        collector = Collector(enabled=True, trace_file=str(path))
        collector.event("repair", module="tea", ctsels=3)
        with collector.span("build.opt", benchmark="tea"):
            pass
        collector.close()

        records = read_events(path)
        assert [r["event"] for r in records] == ["repair", "span"]
        assert records[0]["module"] == "tea"
        assert records[0]["ctsels"] == 3
        assert records[1]["name"] == "build.opt"
        # every record is plain JSON with a pid
        for record in records:
            assert record["pid"] == os.getpid()
            json.dumps(record)  # still serialisable

    def test_trace_file_appends_across_collectors(self, tmp_path):
        """Append mode lets forked workers share one sink file."""
        path = tmp_path / "trace.jsonl"
        for index in range(2):
            collector = Collector(enabled=True, trace_file=str(path))
            collector.event("tick", index=index)
            collector.close()
        assert [r["index"] for r in read_events(path)] == [0, 1]

    def test_trace_file_implies_enabled(self, tmp_path):
        collector = Collector(enabled=False, trace_file=str(tmp_path / "t.jsonl"))
        assert collector.enabled


class TestSnapshotMerge:
    def test_snapshot_merge_adds_counters_and_timers(self):
        worker = Collector(enabled=True)
        worker.counter("hits", 2)
        with worker.span("stage"):
            pass

        parent = Collector(enabled=True)
        parent.counter("hits", 1)
        parent.merge(worker.snapshot())
        parent.merge(worker.snapshot())

        assert parent.counters["hits"] == 5
        assert parent.timers["stage"][0] == 2

    def test_disabled_snapshot_is_none_and_merge_is_noop(self):
        disabled = Collector(enabled=False)
        assert disabled.snapshot() is None
        enabled = Collector(enabled=True)
        enabled.merge(None)
        assert enabled.counters == {}
        disabled.merge({"counters": {"x": 1}, "timers": {}})
        assert disabled.counters == {}

    def test_reset_clears_metrics(self):
        collector = Collector(enabled=True)
        collector.counter("x")
        with collector.span("y"):
            pass
        collector.reset()
        assert collector.counters == {}
        assert collector.timers == {}
        assert collector.events == []


class TestFromEnvAndConfigure:
    def test_from_env_disabled_by_default(self):
        with mock.patch.dict(os.environ, clear=False) as env:
            env.pop(TRACE_ENV_VAR, None)
            env.pop(TRACE_FILE_ENV_VAR, None)
            assert not Collector.from_env().enabled

    def test_from_env_trace_knob(self):
        with mock.patch.dict(os.environ, {TRACE_ENV_VAR: "1"}):
            assert Collector.from_env().enabled
        with mock.patch.dict(os.environ, {TRACE_ENV_VAR: "0"}):
            assert not Collector.from_env().enabled

    def test_from_env_trace_file_knob(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with mock.patch.dict(
            os.environ, {TRACE_ENV_VAR: "0", TRACE_FILE_ENV_VAR: path}
        ):
            collector = Collector.from_env()
        assert collector.enabled
        assert collector.trace_file == path

    def test_configure_mutates_the_global_in_place(self):
        try:
            returned = configure(enabled=True)
            assert returned is OBS
            assert OBS.enabled
            OBS.counter("probe")
            assert OBS.counters["probe"] == 1
        finally:
            with mock.patch.dict(os.environ, clear=False) as env:
                env.pop(TRACE_ENV_VAR, None)
                env.pop(TRACE_FILE_ENV_VAR, None)
                configure()
        assert not OBS.enabled


class TestBuildManyAggregation:
    def test_cross_process_metrics_merge_into_parent(self, tmp_path):
        """Pool workers ship snapshots back; the parent folds them in."""
        requests = [
            build_request(get_benchmark(name)) for name in ("otdt", "ofdf")
        ]
        store = ArtifactStore(tmp_path / "cache")
        try:
            configure(enabled=True)
            build_many(requests, jobs=2, store=store)  # cold: builds + writes
            assert OBS.counters.get("artifacts.store.misses", 0) == 2
            assert OBS.counters.get("artifacts.store.writes", 0) == 2
            assert OBS.counters.get("core.repair.modules", 0) == 2
            assert OBS.counters.get("core.repair.ctsels_inserted", 0) > 0
            # stage timers aggregated across both worker processes
            assert OBS.timers["build.repair"][0] == 2

            OBS.reset()
            build_many(requests, jobs=2, store=store)  # warm: pure hits
            assert OBS.counters.get("artifacts.store.hits", 0) == 2
            assert OBS.counters.get("artifacts.store.misses", 0) == 0
        finally:
            with mock.patch.dict(os.environ, clear=False) as env:
                env.pop(TRACE_ENV_VAR, None)
                env.pop(TRACE_FILE_ENV_VAR, None)
                configure()

    def test_disabled_build_many_keeps_collector_empty(self, tmp_path):
        requests = [build_request(get_benchmark("otdt"))]
        store = ArtifactStore(tmp_path / "cache")
        assert not OBS.enabled
        build_many(requests, jobs=1, store=store)
        assert OBS.counters == {}
        assert OBS.timers == {}
