"""Abstract-interpretation cache certification (must/may line sets)."""

import pytest

from repro.exec.backend import make_executor
from repro.ir import parse_module
from repro.statics import (
    CACHE_VERDICT_CERTIFIED,
    CACHE_VERDICT_RESIDUAL,
    CacheCertificationReport,
    CacheConfig,
    analyze_cache,
    analyze_module_taint,
    certify_matrix,
)

SMALL_TABLE = """
const global @t[2]
func @f(k: int) {
entry:
  i = mov k & 1
  x = load t[i]
  ret x
}
"""

BIG_TABLE = """
const global @sbox[256]
func @f(k: int) {
entry:
  i = mov k & 255
  x = load sbox[i]
  ret x
}
"""

CONST_SEQUENCE = """
const global @t[16]
func @f(k: int) {
entry:
  a = load t[0]
  b = load t[1]
  c = load t[15]
  r = mov a ^ b
  r2 = mov r ^ c
  r3 = mov r2 ^ k
  ret r3
}
"""

GUARDED_PUBLIC = """
func @f(a: ptr, i: int, k: int) {
entry:
  inb = mov k == 0
  idx = ctsel inb, i, 0, guard
  x = load a[idx]
  ret x
}
"""

SECRET_BRANCH = """
func @f(k: int) {
entry:
  p = mov k < 0
  br p, a, b
a:
  jmp b
b:
  ret 0
}
"""

CALLEE_LEAK = """
const global @sbox[256]
func @g(k: int) {
entry:
  i = mov k & 255
  x = load sbox[i]
  ret x
}
func @f(k: int) {
entry:
  x = call @g(k)
  ret x
}
"""

LAYOUT = """
global @t[4]
func @f(a: ptr) {
entry:
  x = load t[0]
  y = load a[0]
  r = mov x ^ y
  ret r
}
"""


def _cache_report(source, entry="f", arg_sizes=None):
    module = parse_module(source)
    matrix = certify_matrix(
        module, entry=entry, channels=("cache",), arg_sizes=arg_sizes
    )
    return matrix.cache


class TestClassification:
    def test_secret_index_in_one_line_is_neutral(self):
        # A 2-word (16-byte) table spans one 64-byte line: every candidate
        # address hits the same line, so the access is cache-neutral.
        report = _cache_report(SMALL_TABLE)
        cert = report.functions["f"]
        assert cert.verdict == CACHE_VERDICT_CERTIFIED
        assert cert.neutral_accesses == 1 and cert.secret_accesses == 0
        assert "CACHE-NEUTRAL-INDEX" in [d.rule for d in cert.diagnostics]

    def test_secret_index_across_lines_is_residual(self):
        # 256 words = 2048 bytes = 32 lines: the line chosen depends on
        # the secret.
        report = _cache_report(BIG_TABLE)
        cert = report.functions["f"]
        assert cert.verdict == CACHE_VERDICT_RESIDUAL
        assert cert.secret_accesses == 1
        assert cert.inherently_data_inconsistent
        assert report.genuine_failures == []
        assert "CACHE-INDEX-SECRET" in [d.rule for d in cert.diagnostics]

    def test_constant_sequence_hits_and_misses(self):
        # t[0] cold-misses its line; t[1] shares it (always-hit); t[15]
        # lands in the next 64-byte line (always-miss).
        report = _cache_report(CONST_SEQUENCE)
        cert = report.functions["f"]
        assert cert.verdict == CACHE_VERDICT_CERTIFIED
        assert cert.always_miss == 2
        assert cert.always_hit == 1
        assert cert.unknown == 0

    def test_guard_ctsel_resolves_to_selected_arm(self):
        # The repair guard's condition holds on every real execution, so
        # the guarded index *is* the public arm — no secret dependence.
        report = _cache_report(GUARDED_PUBLIC, arg_sizes={"a": 8})
        cert = report.functions["f"]
        assert cert.verdict == CACHE_VERDICT_CERTIFIED
        assert cert.secret_accesses == 0

    def test_secret_branch_is_icache_residual(self):
        report = _cache_report(SECRET_BRANCH)
        cert = report.functions["f"]
        assert cert.verdict == CACHE_VERDICT_RESIDUAL
        assert cert.branch_leaks == 1
        assert not cert.inherently_data_inconsistent
        assert report.genuine_failures == ["f"]
        assert "CACHE-BRANCH-SECRET" in [d.rule for d in cert.diagnostics]

    def test_root_verdict_covers_call_closure(self):
        # The dynamic simulator sees the whole call tree, so a secret
        # access in a callee makes the *root* residual.
        report = _cache_report(CALLEE_LEAK)
        cert = report.functions["f"]
        assert cert.verdict == CACHE_VERDICT_RESIDUAL
        assert cert.secret_accesses == 1


class TestAddressModel:
    def test_layout_matches_executor(self):
        # The walker's bump allocator must mirror repro.exec.memory:
        # globals first (module order), then entry pointer args.
        from repro.statics.abscache import _Walker

        module = parse_module(LAYOUT)
        taint = analyze_module_taint(module, {"f": ["a"]}, False)
        walker = _Walker(module, taint, CacheConfig(), {"a": 4})
        walker.bind_root(module.functions["f"])

        executor = make_executor(module)
        result = executor.run("f", [[1, 2, 3, 4]])
        bases = {
            event.region: event.address - event.index * 8
            for event in result.trace.memory
        }

        assert walker.regions["g:t"].base == bases["@t"]
        assert walker.regions["arg:f:a"].base == bases["arg:a"]

    def test_unknown_size_degrades_later_bases(self):
        from repro.statics.abscache import _Walker

        module = parse_module(LAYOUT)
        taint = analyze_module_taint(module, {"f": ["a"]}, False)
        # Without arg_sizes the argument region is unmodelled, but the
        # global before it still has its concrete base.
        walker = _Walker(module, taint, CacheConfig())
        walker.bind_root(module.functions["f"])
        assert walker.regions["g:t"].base is not None
        assert walker.regions["arg:f:a"].base is None


class TestConfigAndSerialisation:
    def test_config_geometry(self):
        config = CacheConfig(size=32768, line_size=64, ways=8)
        assert config.num_sets == 64

    def test_report_round_trips_through_dict(self):
        module = parse_module(BIG_TABLE)
        taint = analyze_module_taint(module, {"f": ["k"]}, False)
        report = analyze_cache(module, taint, ["f"])
        clone = CacheCertificationReport.from_dict(report.as_dict())
        assert clone.as_dict() == report.as_dict()
        assert clone.functions["f"].verdict == CACHE_VERDICT_RESIDUAL

    def test_missing_root_raises(self):
        module = parse_module(SMALL_TABLE)
        taint = analyze_module_taint(module, {"f": ["k"]}, False)
        with pytest.raises(KeyError):
            analyze_cache(module, taint, ["nope"])
