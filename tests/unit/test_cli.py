"""The ``lif`` command-line interface."""

import pytest

from repro.cli import main

SOURCE = """
uint compare(secret uint *a, secret uint *b) {
  for (uint i = 0; i < 2; i = i + 1) {
    if (a[i] != b[i]) { return 0; }
  }
  return 1;
}
"""

CONSTANT_TIME_SOURCE = """
uint mix(secret uint *a) {
  uint acc = 0;
  for (uint i = 0; i < 2; i = i + 1) {
    acc = acc ^ a[i];
  }
  return acc;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "compare.mc"
    path.write_text(SOURCE)
    return str(path)


class TestCompile:
    def test_compile_prints_ir(self, source_file, capsys):
        assert main(["compile", source_file]) == 0
        out = capsys.readouterr().out
        assert "func @compare" in out
        assert "br " in out  # the secret branch is still there

    def test_compile_optimized(self, source_file, capsys):
        assert main(["compile", source_file, "-O"]) == 0

    def test_ir_input_accepted(self, tmp_path, capsys):
        path = tmp_path / "mod.ir"
        path.write_text("func @f() { entry: ret 42 }")
        assert main(["run", str(path), "f"]) == 0
        assert "result = 42" in capsys.readouterr().out


class TestRepair:
    def test_repair_removes_branches(self, source_file, capsys):
        assert main(["repair", source_file]) == 0
        captured = capsys.readouterr()
        assert "br " not in captured.out
        assert "ctsel" in captured.out
        assert "repaired in" in captured.err

    def test_repair_optimized(self, source_file, capsys):
        assert main(["repair", source_file, "-O"]) == 0


class TestRun:
    def test_run_with_array_arguments(self, source_file, capsys):
        assert main(["run", source_file, "compare", "1,2", "1,2"]) == 0
        out = capsys.readouterr().out
        assert "result = 1" in out
        assert "cycles" in out

    def test_run_mismatched_arrays(self, source_file, capsys):
        assert main(["run", source_file, "compare", "1,2", "3,4"]) == 0
        assert "result = 0" in capsys.readouterr().out

    @pytest.mark.parametrize("backend", ["interp", "compiled"])
    def test_run_backend_flag(self, source_file, capsys, backend):
        assert main(["run", source_file, "compare", "1,2", "1,2",
                     "--backend", backend]) == 0
        out = capsys.readouterr().out
        assert "result = 1" in out

    def test_backends_report_same_cycles(self, source_file, capsys):
        outputs = {}
        for backend in ("interp", "compiled"):
            main(["run", source_file, "compare", "1,2", "1,2",
                  "--backend", backend])
            outputs[backend] = capsys.readouterr().out
        assert outputs["interp"] == outputs["compiled"]

    def test_unknown_backend_rejected(self, source_file):
        with pytest.raises(SystemExit):
            main(["run", source_file, "compare", "1,2", "1,2",
                  "--backend", "turbo"])


class TestCheck:
    def test_leaky_function_reports_and_fails(self, source_file, capsys):
        assert main(["check", source_file, "compare"]) == 1
        out = capsys.readouterr().out
        assert "leaky branch" in out

    def test_clean_function_passes(self, tmp_path, capsys):
        path = tmp_path / "mix.mc"
        path.write_text(CONSTANT_TIME_SOURCE)
        assert main(["check", str(path), "mix"]) == 0


class TestVerify:
    def test_covenant_verified(self, source_file, capsys):
        assert main(["verify", source_file, "compare", "--runs", "3",
                     "--array-size", "2"]) == 0
        out = capsys.readouterr().out
        assert "covenant holds      : True" in out
