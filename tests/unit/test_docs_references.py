"""The documentation stays wired to reality.

Two easy-to-rot reference classes are checked mechanically: every
relative link in the ``docs/`` book (and the README) must resolve to a
file in the repository, and every ``REPRO_*`` environment knob the
EXPERIMENTS.md table documents must actually be read somewhere under
``src/`` (or ``benchmarks/``, for harness-only knobs) — a renamed knob
or a moved page fails here instead of misleading a reader.
"""

from __future__ import annotations

import re
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_KNOB_ROW = re.compile(r"^\|\s*`(REPRO_[A-Z0-9_]+)`\s*\|", re.MULTILINE)


def _doc_pages():
    pages = sorted((REPO / "docs").glob("*.md"))
    assert pages, "docs/ book missing"
    return [REPO / "README.md"] + pages


def test_docs_relative_links_resolve():
    broken = []
    for page in _doc_pages():
        for target in _LINK.findall(page.read_text()):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue  # intra-page anchor
            resolved = (page.parent / target).resolve()
            if not resolved.exists():
                broken.append(f"{page.relative_to(REPO)} -> {target}")
    assert not broken, "broken relative links:\n" + "\n".join(broken)


def test_experiments_knobs_are_read_in_src():
    text = (REPO / "EXPERIMENTS.md").read_text()
    knobs = sorted(set(_KNOB_ROW.findall(text)))
    assert len(knobs) >= 20, f"knob table shrank unexpectedly: {knobs}"
    sources = "\n".join(
        path.read_text()
        for root in (REPO / "src", REPO / "benchmarks")
        for path in root.rglob("*.py")
    )
    unread = [knob for knob in knobs if knob not in sources]
    assert not unread, (
        "EXPERIMENTS.md documents env knobs with no read under src/ or "
        f"benchmarks/: {unread}"
    )


def test_docs_name_every_bench_record():
    """Each committed BENCH_*.json is documented in EXPERIMENTS.md."""
    text = (REPO / "EXPERIMENTS.md").read_text()
    missing = [
        record.name
        for record in sorted(REPO.glob("BENCH_*.json"))
        if record.name not in text
    ]
    assert not missing, f"EXPERIMENTS.md never mentions: {missing}"
