"""The SC-Eliminator reimplementation: inlining, preloading, if-conversion,
and its documented defects."""

import pytest

from repro.baseline import (
    InlineBudgetExceeded,
    PRELOAD_SINK,
    SCEliminatorOptions,
    SCEliminatorStats,
    UnsupportedProgramError,
    inline_all_calls,
    insert_preloads,
    referenced_tables,
    sc_eliminate,
)
from repro.exec import Interpreter
from repro.ir import parse_module, validate_module
from repro.transforms import preprocess_module

from tests.conftest import OFDF_IR


class TestInliner:
    CALLER = """
    func @double(x: int) { entry: ret x * 2 }
    func @f(a: int) {
    entry:
      u = call @double(a)
      v = call @double(u)
      ret v + 1
    }
    """

    def test_inlines_and_preserves_semantics(self):
        module = parse_module(self.CALLER)
        preprocess_module(module)
        assert inline_all_calls(module) == 2
        validate_module(module)
        assert Interpreter(module).run("f", [5]).value == 21

    def test_inlined_function_has_no_calls(self):
        from repro.ir.instructions import Call

        module = parse_module(self.CALLER)
        preprocess_module(module)
        inline_all_calls(module)
        function = module.function("f")
        assert not any(
            isinstance(i, Call) for _, i in function.iter_instructions()
        )

    def test_inlines_branchy_callee(self):
        module = parse_module("""
        func @absdiff(a: int, b: int) {
        entry:
          p = mov a < b
          br p, lt, ge
        lt:
          x = mov b - a
          jmp done
        ge:
          y = mov a - b
          jmp done
        done:
          r = phi [x, lt], [y, ge]
          ret r
        }
        func @f(a: int, b: int) {
        entry:
          d = call @absdiff(a, b)
          ret d
        }
        """)
        preprocess_module(module)
        inline_all_calls(module)
        validate_module(module)
        interp = Interpreter(module)
        assert interp.run("f", [3, 10]).value == 7
        assert interp.run("f", [10, 3]).value == 7

    def test_inline_with_memory_and_globals(self):
        module = parse_module("""
        global @g[2]
        func @bump(p: ptr, i: int) {
        entry:
          x = load p[i]
          y = mov x + 1
          store y, p[i]
          t = load g[0]
          ret t
        }
        func @f(a: ptr) {
        entry:
          r1 = call @bump(a, 0)
          r2 = call @bump(a, 0)
          ret r2
        }
        """)
        preprocess_module(module)
        inline_all_calls(module)
        validate_module(module)
        result = Interpreter(module).run("f", [[5]])
        assert result.arrays[0] == [7]

    def test_budget_exceeded(self):
        module = parse_module(self.CALLER)
        preprocess_module(module)
        with pytest.raises(InlineBudgetExceeded):
            inline_all_calls(module, budget=3)

    def test_nested_call_chains_inline_callees_first(self):
        module = parse_module("""
        func @a(x: int) { entry: ret x + 1 }
        func @b(x: int) {
        entry:
          r = call @a(x)
          ret r * 2
        }
        func @f(x: int) {
        entry:
          r = call @b(x)
          ret r
        }
        """)
        preprocess_module(module)
        inline_all_calls(module)
        assert Interpreter(module).run("f", [4]).value == 10


class TestPreload:
    MODULE = """
    const global @sbox[4] = [9, 8, 7, 6]
    global @state[4]
    func @f(k: int) {
    entry:
      x = load sbox[k]
      store x, state[0]
      ret x
    }
    """

    def test_only_const_tables_preloaded(self):
        module = parse_module(self.MODULE)
        tables = referenced_tables(module.function("f"), module)
        assert [t.name for t in tables] == ["sbox"]

    def test_preload_inserts_one_load_per_cell(self):
        module = parse_module(self.MODULE)
        count = insert_preloads(module.function("f"), module)
        assert count == 4
        assert PRELOAD_SINK in module.globals
        validate_module(module)

    def test_preload_is_not_dead_code(self):
        from repro.opt import optimize

        module = parse_module(self.MODULE)
        insert_preloads(module.function("f"), module)
        optimized = optimize(module)
        from repro.ir.instructions import Load

        loads = [
            i for _, i in optimized.function("f").iter_instructions()
            if isinstance(i, Load)
        ]
        # The 4 preload loads survive -O1 because they feed the sink store.
        assert len(loads) >= 5

    def test_no_tables_no_preload(self):
        module = parse_module("func @f(a: ptr) { entry: x = load a[0] ret x }")
        assert insert_preloads(module.function("f"), module) == 0


class TestSCEliminator:
    def test_structured_code_transformed_correctly(self, fig1_module):
        transformed = sc_eliminate(fig1_module)
        validate_module(transformed)
        interp = Interpreter(transformed, strict_memory=False)
        assert interp.run("ofdt", [[1, 2], [1, 2]]).value == 1
        assert interp.run("ofdt", [[1, 2], [1, 9]]).value == 0

    def test_transformed_code_is_operation_invariant(self, fig1_module):
        from repro.verify import check_invariance

        transformed = sc_eliminate(fig1_module)
        report = check_invariance(
            transformed, "ofdt", [[[1, 2], [1, 2]], [[3, 4], [5, 6]]]
        )
        assert report.operation_invariant

    def test_known_bug_multiarm_phi(self, fig1_module):
        """SC-Eliminator mangles >2-arm merges (paper: wrong on oFdF)."""
        transformed = sc_eliminate(fig1_module)
        interp = Interpreter(transformed, strict_memory=False)
        # Equal arrays: the correct answer is 1; the artifact bug yields 0.
        assert interp.run("ofdf", [[1, 2], [1, 2]]).value == 0

    def test_memory_unsafety_on_short_arrays(self, ofdf_module):
        """The paper's Section II-B observation, reproduced."""
        transformed = sc_eliminate(ofdf_module)
        interp = Interpreter(transformed, strict_memory=False)
        result = interp.run("ofdf", [[0], [1]])
        assert result.violations, "zombie loads must go out of bounds"

    def test_inline_budget_failure_reported(self):
        module = parse_module("""
        func @helper(x: int) { entry: ret x + 1 }
        func @f(x: int) {
        entry:
          a = call @helper(x)
          b = call @helper(a)
          ret b
        }
        """)
        with pytest.raises(UnsupportedProgramError):
            sc_eliminate(module, SCEliminatorOptions(inline_budget=4))

    def test_loops_unsupported(self):
        module = parse_module("""
        func @f(c: int) {
        entry:
          jmp head
        head:
          br c, head, done
        done:
          ret 0
        }
        """)
        with pytest.raises(UnsupportedProgramError):
            sc_eliminate(module)

    def test_preload_counted_in_stats(self, fig1_module):
        stats = SCEliminatorStats()
        sc_eliminate(fig1_module, stats=stats)
        assert stats.transformed_instructions > stats.original_instructions
        assert stats.seconds > 0

    def test_stores_guarded_like_ours(self):
        module = parse_module("""
        func @f(a: ptr, c: int) {
        entry:
          br c, then, done
        then:
          store 99, a[0]
          jmp done
        done:
          ret 0
        }
        """)
        transformed = sc_eliminate(module)
        interp = Interpreter(transformed, strict_memory=False)
        assert interp.run("f", [[5], 0]).arrays[0] == [5]
        assert interp.run("f", [[5], 1]).arrays[0] == [99]

    def test_input_not_mutated(self, fig1_module):
        before = str(fig1_module)
        sc_eliminate(fig1_module)
        assert str(fig1_module) == before
