"""The tracing interpreter: semantics, traces, error handling."""

import pytest

from repro.exec import (
    Interpreter,
    InterpreterError,
    MemorySafetyViolation,
    StepLimitExceeded,
)
from repro.ir import parse_module


def run(text: str, name: str, args, **kwargs):
    return Interpreter(parse_module(text), **kwargs).run(name, args)


class TestBasics:
    def test_arithmetic_and_return(self):
        result = run("func @f(a: int, b: int) { entry: x = mov a * b ret x + 1 }",
                     "f", [6, 7])
        assert result.value == 43

    def test_array_argument_roundtrip(self):
        result = run("""
        func @f(a: ptr) {
        entry:
          x = load a[0]
          y = mov x + 1
          store y, a[1]
          ret x
        }
        """, "f", [[10, 0]])
        assert result.value == 10
        assert result.arrays[0] == [10, 11]

    def test_global_state_captured(self):
        result = run("""
        global @g[2]
        func @f(v: int) {
        entry:
          store v, g[1]
          ret 0
        }
        """, "f", [9])
        assert result.global_state["g"] == [0, 9]

    def test_branching(self):
        text = """
        func @f(c: int) {
        entry:
          br c, yes, no
        yes:
          jmp done
        no:
          jmp done
        done:
          r = phi [1, yes], [2, no]
          ret r
        }
        """
        assert run(text, "f", [5]).value == 1
        assert run(text, "f", [0]).value == 2

    def test_phi_parallel_evaluation(self):
        # Swapping phis must read both old values before writing either.
        result = run("""
        func @f(n: int) {
        entry:
          jmp body
        body:
          a = phi [1, entry]
          b = phi [2, entry]
          jmp swap
        swap:
          x = phi [b, body]
          y = phi [a, body]
          r = mov x * 10
          ret r + y
        }
        """, "f", [0])
        assert result.value == 21

    def test_ctsel(self):
        text = "func @f(c: int) { entry: x = ctsel c, 10, 20 ret x }"
        assert run(text, "f", [1]).value == 10
        assert run(text, "f", [0]).value == 20

    def test_alloc_local_memory(self):
        result = run("""
        func @f() {
        entry:
          buf = alloc 3
          store 7, buf[2]
          x = load buf[2]
          ret x
        }
        """, "f", [])
        assert result.value == 7

    def test_call_and_return(self):
        result = run("""
        func @add(a: int, b: int) { entry: ret a + b }
        func @f() {
        entry:
          x = call @add(2, 3)
          y = call @add(x, x)
          ret y
        }
        """, "f", [])
        assert result.value == 10

    def test_call_passing_pointer(self):
        result = run("""
        func @fill(p: ptr, v: int) {
        entry:
          store v, p[0]
          ret 0
        }
        func @f() {
        entry:
          buf = alloc 1
          c = call @fill(buf, 42)
          x = load buf[0]
          ret x
        }
        """, "f", [])
        assert result.value == 42


class TestTraces:
    def test_instruction_trace_records_sites(self):
        result = run("func @f() { entry: x = mov 1 ret x }", "f", [])
        sites = [str(s) for s in result.trace.instructions]
        assert sites == ["@f:entry[0]", "@f:entry[1]"]

    def test_memory_trace_records_accesses(self):
        result = run("""
        func @f(a: ptr) {
        entry:
          x = load a[1]
          store x, a[0]
          ret x
        }
        """, "f", [[5, 6]])
        kinds = [(a.kind, a.index) for a in result.trace.memory]
        assert kinds == [("load", 1), ("store", 0)]

    def test_trace_can_be_disabled(self):
        module = parse_module("func @f() { entry: ret 0 }")
        result = Interpreter(module, record_trace=False).run("f", [])
        assert result.trace is None

    def test_cycles_accumulate(self):
        result = run("func @f(a: ptr) { entry: x = load a[0] ret x }",
                     "f", [[1]])
        assert result.cycles > result.steps >= 2


class TestErrors:
    def test_wrong_arity(self):
        with pytest.raises(InterpreterError, match="expects"):
            run("func @f(a: int) { entry: ret a }", "f", [])

    def test_pointer_arithmetic_rejected(self):
        with pytest.raises(InterpreterError, match="pointer"):
            run("func @f(a: ptr) { entry: x = mov a + 1 ret x }", "f", [[1]])

    def test_pointer_equality_allowed(self):
        result = run("func @f(a: ptr) { entry: x = mov a == a ret x }",
                     "f", [[1]])
        assert result.value == 1

    def test_returning_pointer_rejected(self):
        with pytest.raises(InterpreterError, match="pointer"):
            run("func @f(a: ptr) { entry: xp = mov a ret xp }", "f", [[1]])

    def test_loop_hits_step_limit(self):
        module = parse_module("""
        func @f() {
        entry:
          jmp entry
        }
        """)
        with pytest.raises(StepLimitExceeded):
            Interpreter(module, max_steps=100).run("f", [])

    def test_recursion_depth_limit(self):
        module = parse_module("""
        func @f(n: int) {
        entry:
          x = call @f(n)
          ret x
        }
        """)
        with pytest.raises(InterpreterError, match="depth"):
            Interpreter(module).run("f", [1])

    def test_strict_oob_raises(self):
        with pytest.raises(MemorySafetyViolation):
            run("func @f(a: ptr) { entry: x = load a[5] ret x }", "f", [[1]])

    def test_permissive_oob_recorded(self):
        result = run("func @f(a: ptr) { entry: x = load a[5] ret 0 }",
                     "f", [[1]], strict_memory=False)
        assert len(result.violations) == 1

    def test_wrapping_of_argument_words(self):
        result = run("func @f(a: int) { entry: ret a }", "f", [2**64 + 5])
        assert result.value == 5


class TestOutputsObservation:
    def test_outputs_tuple_is_comparable(self):
        text = """
        global @g[1]
        func @f(a: ptr, n: int) {
        entry:
          store n, a[0]
          store n, g[0]
          ret n
        }
        """
        first = run(text, "f", [[0], 3]).outputs()
        second = run(text, "f", [[0], 3]).outputs()
        third = run(text, "f", [[0], 4]).outputs()
        assert first == second
        assert first != third
