"""The ``lif fuzz`` subcommand."""

from repro.cli import main


def test_fuzz_smoke_run_prints_summary(capsys):
    assert main(["fuzz", "--seed", "5", "-n", "3", "--no-minimize"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("fuzz seed=5 iterations=3")
    assert "oracle repair" in out
    assert "oracle opt_sanitize" in out
    assert "failures: 0" in out


def test_fuzz_is_reproducible_across_invocations(capsys):
    assert main(["fuzz", "--seed", "2", "-n", "2", "--no-minimize"]) == 0
    first = capsys.readouterr().out
    assert main(["fuzz", "--seed", "2", "-n", "2", "--no-minimize"]) == 0
    second = capsys.readouterr().out
    assert first == second


def test_fuzz_ir_fraction_zero_generates_only_minic(capsys):
    assert main([
        "fuzz", "--seed", "1", "-n", "2", "--no-minimize",
        "--ir-fraction", "0",
    ]) == 0
    out = capsys.readouterr().out
    assert "(minic=2, ir=0, invalid=0)" in out


def test_fuzz_help_lists_knobs(capsys):
    try:
        main(["fuzz", "--help"])
    except SystemExit as stop:
        assert stop.code == 0
    out = capsys.readouterr().out
    for flag in ("--seed", "--iterations", "--jobs", "--no-minimize",
                 "--store", "--corpus-dir", "--ir-fraction",
                 "--mutate", "--cov", "--checkpoint", "--resume",
                 "--shards"):
        assert flag in out


def test_fuzz_cov_routes_to_campaign(capsys):
    assert main([
        "fuzz", "--seed", "5", "-n", "3", "--no-minimize", "--cov",
    ]) == 0
    out = capsys.readouterr().out
    assert out.startswith("fuzz campaign seed=5 iterations=3")
    assert "mode=blind+coverage" in out
    assert "coverage keys=" in out


def test_fuzz_mutate_summary_is_reproducible(capsys):
    args = ["fuzz", "--seed", "4", "-n", "6", "--no-minimize", "--mutate"]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert main(args) == 0
    second = capsys.readouterr().out
    assert "mode=coverage-guided" in first
    assert first == second


def test_fuzz_resume_requires_checkpoint(capsys):
    assert main(["fuzz", "--seed", "0", "-n", "2", "--resume"]) == 2
    err = capsys.readouterr().err
    assert "--resume requires --checkpoint" in err
