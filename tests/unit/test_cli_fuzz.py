"""The ``lif fuzz`` subcommand."""

from repro.cli import main


def test_fuzz_smoke_run_prints_summary(capsys):
    assert main(["fuzz", "--seed", "5", "-n", "3", "--no-minimize"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("fuzz seed=5 iterations=3")
    assert "oracle repair" in out
    assert "oracle opt_sanitize" in out
    assert "failures: 0" in out


def test_fuzz_is_reproducible_across_invocations(capsys):
    assert main(["fuzz", "--seed", "2", "-n", "2", "--no-minimize"]) == 0
    first = capsys.readouterr().out
    assert main(["fuzz", "--seed", "2", "-n", "2", "--no-minimize"]) == 0
    second = capsys.readouterr().out
    assert first == second


def test_fuzz_ir_fraction_zero_generates_only_minic(capsys):
    assert main([
        "fuzz", "--seed", "1", "-n", "2", "--no-minimize",
        "--ir-fraction", "0",
    ]) == 0
    out = capsys.readouterr().out
    assert "(minic=2, ir=0, invalid=0)" in out


def test_fuzz_help_lists_knobs(capsys):
    try:
        main(["fuzz", "--help"])
    except SystemExit as stop:
        assert stop.code == 0
    out = capsys.readouterr().out
    for flag in ("--seed", "--iterations", "--jobs", "--no-minimize",
                 "--store", "--corpus-dir", "--ir-fraction"):
        assert flag in out
