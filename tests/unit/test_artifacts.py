"""Unit tests for the content-addressed artifact subsystem."""

import json

import pytest

from repro.artifacts import (
    ArtifactStore,
    BuildRequest,
    build_artifacts,
    cache_key,
    pipeline_version,
)
from repro.bench.runner import build_request
from repro.bench.suite import get_benchmark


def _request(name: str) -> BuildRequest:
    return build_request(get_benchmark(name))


class TestKeys:
    def test_pipeline_version_is_stable(self):
        assert pipeline_version() == pipeline_version()
        assert len(pipeline_version()) == 16

    def test_key_is_stable(self):
        request = _request("otdt")
        assert request.key() == request.key()

    def test_key_depends_on_source(self):
        base = cache_key("int f() { return 1; }", {"entry": "f"})
        other = cache_key("int f() { return 2; }", {"entry": "f"})
        assert base != other

    def test_key_depends_on_options(self):
        source = "int f() { return 1; }"
        assert cache_key(source, {"budget": 1}) != cache_key(source, {"budget": 2})

    def test_requests_for_different_benchmarks_differ(self):
        assert _request("otdt").key() != _request("ofdf").key()


class TestStore:
    def test_missing_key_is_none(self, tmp_path):
        assert ArtifactStore(tmp_path).load("ab" * 32) is None

    def test_save_load_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        built = build_artifacts(_request("otdt"), store=store)
        assert not built.cache_hit
        loaded = store.load(built.key)
        assert loaded is not None
        assert loaded.cache_hit
        assert loaded.ir == built.ir
        assert loaded.module_names == built.module_names
        assert loaded.repair_stats == json.loads(json.dumps(built.repair_stats))
        assert loaded.sce_correct == built.sce_correct

    def test_corrupt_meta_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        built = build_artifacts(_request("otdt"), store=store)
        meta = store._entry_dir(built.key) / "meta.json"
        meta.write_text("{not json")
        assert store.load(built.key) is None
        # ...and a rebuild repopulates the entry.
        rebuilt = build_artifacts(_request("otdt"), store=store)
        assert not rebuilt.cache_hit
        assert store.load(built.key) is not None

    def test_known_keys(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.known_keys() == []
        built = build_artifacts(_request("otdt"), store=store)
        assert store.known_keys() == [built.key]


class TestBuild:
    def test_warm_build_is_a_byte_identical_hit(self, tmp_path):
        store = ArtifactStore(tmp_path)
        cold = build_artifacts(_request("otdt"), store=store)
        warm = build_artifacts(_request("otdt"), store=store)
        assert not cold.cache_hit
        assert warm.cache_hit
        assert warm.ir == cold.ir

    def test_unsupported_sce_round_trips(self, tmp_path):
        store = ArtifactStore(tmp_path)
        cold = build_artifacts(_request("ctbench_modexp"), store=store)
        warm = build_artifacts(_request("ctbench_modexp"), store=store)
        assert warm.cache_hit
        assert "sce" not in warm.ir
        assert warm.sce_stats is None
        assert "budget" in warm.sce_error

    def test_stage_timings_recorded(self):
        built = build_artifacts(_request("otdt"), store=None)
        for stage in ("parse", "unroll", "codegen", "repair", "sce", "opt", "print"):
            assert stage in built.timings, stage
            assert built.timings[stage] >= 0.0

    def test_secret_params_survive_the_round_trip(self, tmp_path):
        from repro.artifacts import parse_variant
        from repro.frontend import compile_source

        store = ArtifactStore(tmp_path)
        bench = get_benchmark("otdt")
        built = build_artifacts(_request("otdt"), store=store)
        warm = build_artifacts(_request("otdt"), store=store)
        fresh = compile_source(bench.source(), name=bench.name)
        for module in (fresh, parse_variant(warm, "original")):
            function = module.function(bench.entry)
            assert function.sensitive_params == fresh.function(
                bench.entry
            ).sensitive_params


class TestCertificationMatrix:
    VARIANTS = ("original", "original_o1", "repaired", "repaired_o1")

    def test_matrix_covers_all_variants_and_channels(self):
        built = build_artifacts(_request("otdt"), store=None)
        assert set(built.certification_matrix) == set(self.VARIANTS)
        for variant in self.VARIANTS:
            record = built.certification_matrix[variant]
            assert set(record["channels"]) == {"time", "cache", "power"}
            for channel in ("time", "cache", "power"):
                assert record[channel] is not None, (variant, channel)
        # The legacy single-channel certification mirrors the time channel.
        assert (
            built.certification["repaired"]
            == built.certification_matrix["repaired"]["time"]
        )

    def test_warm_load_does_no_static_analysis(self, tmp_path):
        from repro.obs import OBS
        from repro.statics import CertificationMatrix

        store = ArtifactStore(tmp_path)
        with OBS.capture(force=True) as cold_cap:
            cold = build_artifacts(_request("otdt"), store=store)
        assert cold_cap.counters.get("statics.cache.analyses") == 4.0
        assert cold_cap.counters.get("statics.power.analyses") == 4.0

        with OBS.capture(force=True) as warm_cap:
            warm = build_artifacts(_request("otdt"), store=store)
        assert warm.cache_hit
        assert warm.certification_matrix == cold.certification_matrix
        assert "statics.cache.analyses" not in warm_cap.counters
        assert "statics.power.analyses" not in warm_cap.counters
        # The cached payload reconstructs into a live matrix.
        matrix = CertificationMatrix.from_dict(
            warm.certification_matrix["repaired"]
        )
        assert matrix.verdicts()["time"]
