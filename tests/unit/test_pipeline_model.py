"""The gem5-lite pipeline timing backend.

The point under test is the paper's architecture-independence claim: a
repaired program's trace is input-independent, so *any* deterministic
microarchitectural model — not just the flat cost model — must clock it
identically across inputs, while the original program's timing varies
under both models.
"""

from repro import compile_minic, repair_module
from repro.exec import Interpreter, PipelineConfig, PipelineModel
from repro.exec.pipeline_model import BranchPredictor
from repro.verify import adapt_inputs

LEAKY = """
uint check(secret uint *a, secret uint *b) {
  for (uint i = 0; i < 8; i = i + 1) {
    if (a[i] != b[i]) { return 0; }
  }
  return 1;
}
"""


def trace_of(module, name, args):
    return Interpreter(module).run(name, args).trace


class TestBranchPredictor:
    def test_warms_up_to_stable_direction(self):
        predictor = BranchPredictor()
        results = [predictor.predict_and_update("site", True)
                   for _ in range(5)]
        assert results[0] is False     # cold counter predicts not-taken
        assert all(results[2:])        # saturates to taken

    def test_alternating_pattern_mispredicts(self):
        predictor = BranchPredictor()
        for i in range(20):
            predictor.predict_and_update("site", i % 2 == 0)
        assert predictor.misses > 5


class TestPipelineModel:
    def test_replay_is_deterministic(self):
        module = compile_minic(LEAKY)
        trace = trace_of(module, "check", [[1] * 8, [1] * 8])
        model = PipelineModel()
        assert model.simulate(trace).cycles == model.simulate(trace).cycles

    def test_original_leaks_under_this_model_too(self):
        module = compile_minic(LEAKY)
        fast = trace_of(module, "check", [[9] * 8, [1] * 8])   # early exit
        slow = trace_of(module, "check", [[1] * 8, [1] * 8])   # full scan
        model = PipelineModel()
        assert model.simulate(fast).cycles < model.simulate(slow).cycles

    def test_repaired_program_is_flat_under_this_model(self):
        module = compile_minic(LEAKY)
        repaired = repair_module(module)
        inputs = adapt_inputs(
            module, "check",
            [[[1] * 8, [1] * 8], [[9] * 8, [1] * 8], [[5] * 8, [6] * 8]],
        )
        interpreter = Interpreter(repaired)
        model = PipelineModel()
        cycle_counts = {
            model.simulate(interpreter.run("check", args).trace).cycles
            for args in inputs
        }
        assert len(cycle_counts) == 1

    def test_report_fields(self):
        module = compile_minic(LEAKY)
        trace = trace_of(module, "check", [[1] * 8, [1] * 8])
        report = PipelineModel().simulate(trace)
        assert report.instructions == len(trace.instructions)
        assert report.cycles >= report.instructions  # CPI >= 1
        assert report.cpi >= 1.0
        assert report.i1_misses >= 1  # cold caches

    def test_miss_penalty_scales_cycles(self):
        module = compile_minic(LEAKY)
        trace = trace_of(module, "check", [[1] * 8, [1] * 8])
        cheap = PipelineModel(PipelineConfig(l1_miss_penalty=1)).simulate(trace)
        costly = PipelineModel(
            PipelineConfig(l1_miss_penalty=100)
        ).simulate(trace)
        assert costly.cycles > cheap.cycles

    def test_two_models_agree_on_invariance_not_on_magnitude(self):
        """The architecture-independence argument, end to end."""
        module = compile_minic(LEAKY)
        repaired = repair_module(module)
        args = adapt_inputs(module, "check", [[[1] * 8, [2] * 8]])[0]
        result = Interpreter(repaired).run("check", args)
        pipeline_cycles = PipelineModel().simulate(result.trace).cycles
        # Different clocks (the interpreter's flat model vs the pipeline) …
        assert pipeline_cycles != result.cycles
        # … but both flat across inputs (the set-of-one assertion above
        # covers the pipeline; the interpreter's own invariance is covered
        # throughout the suite).
        assert pipeline_cycles > 0
