"""LRU discipline of the identity-keyed executor caches.

A long-running ``lif serve`` process compiles thousands of distinct
modules; before this bound the compile/SoA/superblock caches grew without
limit (weakref eviction only fires when a module is garbage-collected,
and a warm server deliberately keeps modules alive).  These tests pin the
``REPRO_EXEC_CACHE_SIZE`` bound: least-recently-used entries are evicted,
a hit refreshes recency, and every eviction is counted in the stats the
serve layer reports.
"""

import pytest

from repro.exec import (
    EXEC_CACHE_SIZE_ENV_VAR,
    batch_cache_stats,
    clear_batch_caches,
    clear_compile_cache,
    compile_cache_stats,
    exec_cache_limit,
    executor_cache_stats,
    get_compiled,
    make_executor,
    run_many,
    trace_cache_stats,
)
from repro.exec.costs import DEFAULT_COST_MODEL
from repro.ir import parse_module

ADD_IR = """
func @add(a: int, b: int) {
entry:
  s = mov a + b
  ret s
}
"""

LOOP_IR = """
func @sum(a: ptr, n: int) {
entry:
  jmp head
head:
  i = phi [0, entry], [i2, body]
  s = phi [0, entry], [s2, body]
  p = mov i < n
  br p, body, done
body:
  x = load a[i]
  s2 = mov s + x
  i2 = mov i + 1
  jmp head
done:
  ret s
}
"""


@pytest.fixture(autouse=True)
def _clean_caches():
    clear_compile_cache()
    clear_batch_caches()
    yield
    clear_compile_cache()
    clear_batch_caches()


def _compile(module):
    return get_compiled(module, True, True, DEFAULT_COST_MODEL)


def _modules(count, text=ADD_IR):
    return [parse_module(text, name=f"m{index}") for index in range(count)]


def test_limit_env_knob(monkeypatch):
    monkeypatch.setenv(EXEC_CACHE_SIZE_ENV_VAR, "7")
    assert exec_cache_limit() == 7
    monkeypatch.setenv(EXEC_CACHE_SIZE_ENV_VAR, "junk")
    assert exec_cache_limit() == 128
    monkeypatch.delenv(EXEC_CACHE_SIZE_ENV_VAR)
    assert exec_cache_limit() == 128


def test_compile_cache_evicts_least_recently_used(monkeypatch):
    monkeypatch.setenv(EXEC_CACHE_SIZE_ENV_VAR, "4")
    modules = _modules(6)
    for module in modules:
        _compile(module)
    stats = compile_cache_stats()
    assert stats["entries"] == 4
    assert stats["evictions"] == 2
    # The two oldest are gone: compiling them again is a miss.
    before = compile_cache_stats()["misses"]
    _compile(modules[0])
    assert compile_cache_stats()["misses"] == before + 1
    # The newest survived: a hit, not a rebuild.
    before_hits = compile_cache_stats()["hits"]
    _compile(modules[5])
    assert compile_cache_stats()["hits"] == before_hits + 1


def test_compile_cache_hit_refreshes_recency(monkeypatch):
    monkeypatch.setenv(EXEC_CACHE_SIZE_ENV_VAR, "3")
    modules = _modules(4)
    for module in modules[:3]:
        _compile(module)
    _compile(modules[0])  # refresh: module 1 is now the oldest
    _compile(modules[3])  # evicts module 1, not module 0
    before_hits = compile_cache_stats()["hits"]
    _compile(modules[0])
    assert compile_cache_stats()["hits"] == before_hits + 1
    before_misses = compile_cache_stats()["misses"]
    _compile(modules[1])
    assert compile_cache_stats()["misses"] == before_misses + 1


def test_batch_caches_are_bounded(monkeypatch):
    monkeypatch.setenv(EXEC_CACHE_SIZE_ENV_VAR, "2")
    modules = _modules(4, text=LOOP_IR)
    vectors = [[[1, 2, 3], 3], [[4, 5, 6], 3]]
    for module in modules:
        run_many(make_executor(module, backend="batch"), "sum", vectors)
    stats = batch_cache_stats()
    assert stats["entries"] <= 2
    assert stats["evictions"] >= 2
    assert trace_cache_stats()["entries"] <= 2


def test_executor_cache_stats_shape():
    stats = executor_cache_stats()
    assert set(stats) == {"limit", "compile", "batch", "trace"}
    for name in ("compile", "batch", "trace"):
        assert set(stats[name]) == {"hits", "misses", "evictions", "entries"}
    assert stats["limit"] == exec_cache_limit()
