"""ctsel expansion (paper Example 5)."""

from repro.core import lower_ctsels_in_function, lower_ctsels_in_module
from repro.exec import Interpreter
from repro.ir import parse_module, validate_module
from repro.ir.instructions import CtSel


class TestLowering:
    def test_integer_select_expands(self):
        module = parse_module("""
        func @f(c: int, a: int, b: int) {
        entry:
          x = ctsel c, a, b
          ret x
        }
        """)
        count = lower_ctsels_in_module(module, assume_boolean=False)
        assert count == 1
        validate_module(module)
        function = module.function("f")
        assert not any(
            isinstance(i, CtSel) for _, i in function.iter_instructions()
        )

    def test_semantics_preserved_for_boolean_condition(self):
        module = parse_module("""
        func @f(c: int, a: int, b: int) {
        entry:
          x = ctsel c, a, b
          ret x
        }
        """)
        lower_ctsels_in_module(module, assume_boolean=False)
        interp = Interpreter(module)
        assert interp.run("f", [1, 10, 20]).value == 10
        assert interp.run("f", [0, 10, 20]).value == 20

    def test_non_boolean_condition_normalised(self):
        module = parse_module("""
        func @f(c: int, a: int, b: int) {
        entry:
          x = ctsel c, a, b
          ret x
        }
        """)
        lower_ctsels_in_module(module, assume_boolean=False)
        interp = Interpreter(module)
        # Any non-zero condition selects the first operand, like ctsel.
        assert interp.run("f", [7, 10, 20]).value == 10
        assert interp.run("f", [-3, 10, 20]).value == 10

    def test_assume_boolean_skips_normalisation(self):
        source = """
        func @f(c: int, a: int, b: int) {
        entry:
          x = ctsel c, a, b
          ret x
        }
        """
        trusted = parse_module(source)
        cautious = parse_module(source)
        lower_ctsels_in_module(trusted, assume_boolean=True)
        lower_ctsels_in_module(cautious, assume_boolean=False)
        assert (trusted.instruction_count()
                == cautious.instruction_count() - 1)

    def test_pointer_selects_stay_primitive(self):
        module = parse_module("""
        func @f(c: int, a: ptr, b: ptr) {
        entry:
          p = ctsel c, a, b
          x = load p[0]
          ret x
        }
        """)
        count = lower_ctsels_in_function(module.function("f"), module)
        assert count == 0
        interp = Interpreter(module)
        assert interp.run("f", [1, [11], [22]]).value == 11
        assert interp.run("f", [0, [11], [22]]).value == 22

    def test_selects_of_pointer_derived_names_stay_primitive(self):
        module = parse_module("""
        global @tab[2]
        func @f(c: int, a: ptr) {
        entry:
          alias = mov a
          p = ctsel c, alias, tab
          x = load p[0]
          ret x
        }
        """)
        assert lower_ctsels_in_function(module.function("f"), module) == 0

    def test_repair_option_integrates_lowering(self, ofdf_module):
        from repro.core import RepairOptions, repair_module
        from repro.verify import check_invariance

        repaired = repair_module(ofdf_module, RepairOptions(lower_ctsel=True))
        # Only pointer selects (array-or-shadow) remain.
        for _, instr in repaired.function("ofdf").iter_instructions():
            if isinstance(instr, CtSel):
                names = {
                    v.name for v in (instr.if_true, instr.if_false)
                    if hasattr(v, "name")
                }
                assert names & {"a", "b"} or any(
                    n.startswith("sh") for n in names
                )
        report = check_invariance(
            repaired, "ofdf", [[[1, 2], 2, [1, 2], 2], [[3, 4], 2, [5, 6], 2]]
        )
        assert report.isochronous and report.memory_safe
