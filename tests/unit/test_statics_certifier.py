"""Per-function constant-time verdicts and their serialisation."""

from repro.ir import parse_module
from repro.statics import (
    VERDICT_CERTIFIED,
    VERDICT_RESIDUAL,
    CertificationReport,
    certify_entry,
    certify_module,
)

LEAKY_BRANCH = """
func @f(k: int) {
entry:
  p = mov k < 0
  br p, a, b
a:
  jmp b
b:
  ret 0
}
"""

SBOX_LOOKUP = """
const global @sbox[256]
func @f(k: int) {
entry:
  i = mov k & 255
  x = load sbox[i]
  ret x
}
"""

CLEAN = """
func @f(a: ptr, b: ptr) {
entry:
  x = load a[0]
  y = load b[0]
  r = mov x ^ y
  ret r
}
"""

GUARDED = """
func @f(a: ptr, i: int, k: int) {
entry:
  inb = mov k == 0
  idx = ctsel inb, i, 0, guard
  x = load a[idx]
  ret x
}
"""


class TestVerdicts:
    def test_leaky_branch_is_genuine_residual(self):
        report = certify_module(parse_module(LEAKY_BRANCH))
        cert = report.functions["f"]
        assert cert.verdict == VERDICT_RESIDUAL
        assert not cert.inherently_data_inconsistent
        assert cert.operation_leaks == 1
        assert report.genuine_failures == ["f"]
        assert not report.operation_leak_free
        rules = [d.rule for d in cert.diagnostics]
        assert "CT-BRANCH-SECRET" in rules

    def test_sbox_lookup_is_inherent_residual(self):
        report = certify_module(parse_module(SBOX_LOOKUP))
        cert = report.functions["f"]
        assert cert.verdict == VERDICT_RESIDUAL
        assert cert.inherently_data_inconsistent
        assert cert.operation_leaks == 0 and cert.data_leaks == 1
        assert report.genuine_failures == []
        assert report.operation_leak_free
        assert report.residual_functions == ["f"]
        rules = [d.rule for d in cert.diagnostics]
        assert rules == ["CT-INDEX-SECRET"]

    def test_clean_function_certified(self):
        report = certify_module(parse_module(CLEAN))
        cert = report.functions["f"]
        assert cert.verdict == VERDICT_CERTIFIED
        assert cert.certified and report.all_certified
        assert cert.diagnostics == ()

    def test_guarded_access_certifies_with_selector_note(self):
        report = certify_module(
            parse_module(GUARDED), roots={"f": ["k"]}
        )
        cert = report.functions["f"]
        assert cert.certified
        assert cert.selector_notes == 1
        assert [d.rule for d in cert.diagnostics] == ["CT-SELECTOR-INDEX"]
        assert all(d.severity == "warning" for d in cert.diagnostics)


class TestEntryRestriction:
    def test_certify_entry_ignores_sibling_variants(self):
        module = parse_module(LEAKY_BRANCH + """
        func @clean(a: int) {
        entry:
          ret a
        }
        """)
        report = certify_entry(module, "clean")
        assert set(report.functions) == {"clean"}
        assert report.all_certified

    def test_certify_entry_covers_callees(self):
        module = parse_module("""
        func @helper(k: int) {
        entry:
          p = mov k < 0
          br p, a, b
        a:
          jmp b
        b:
          ret 0
        }
        func @entrypoint(k: int) {
        entry:
          r = call @helper(k)
          ret r
        }
        """)
        report = certify_entry(module, "entrypoint")
        assert set(report.functions) == {"entrypoint", "helper"}
        assert report.genuine_failures == ["helper"]


class TestSerialisation:
    def test_round_trip(self):
        for text in (LEAKY_BRANCH, SBOX_LOOKUP, CLEAN, GUARDED):
            report = certify_module(parse_module(text))
            clone = CertificationReport.from_dict(report.as_dict())
            assert clone.as_dict() == report.as_dict()
            assert clone.residual_functions == report.residual_functions
            assert clone.diagnostics() == report.diagnostics()

    def test_as_dict_is_json_ready(self):
        import json

        report = certify_module(parse_module(SBOX_LOOKUP))
        assert json.loads(json.dumps(report.as_dict())) == report.as_dict()


class TestChannelSelection:
    def test_normalize_accepts_strings_and_iterables(self):
        from repro.statics import CHANNELS, normalize_channels

        assert normalize_channels(None) == CHANNELS
        assert normalize_channels("cache") == ("cache",)
        assert normalize_channels("power, time") == ("time", "power")
        assert normalize_channels(["power", "cache"]) == ("cache", "power")

    def test_normalize_rejects_unknown_and_empty(self):
        import pytest

        from repro.statics import normalize_channels

        with pytest.raises(ValueError, match="bogus"):
            normalize_channels("time,bogus")
        with pytest.raises(ValueError, match="at least one"):
            normalize_channels("")

    def test_matrix_runs_only_selected_channels(self):
        from repro.statics import certify_matrix

        matrix = certify_matrix(parse_module(SBOX_LOOKUP), channels="cache")
        assert matrix.channels == ("cache",)
        assert matrix.time is None and matrix.power is None
        assert matrix.cache.residual_functions == ["f"]
        assert list(matrix.verdicts()) == ["cache"]

    def test_unknown_channel_report_raises(self):
        import pytest

        from repro.statics import certify_matrix

        matrix = certify_matrix(parse_module(CLEAN))
        with pytest.raises(KeyError):
            matrix.report("em")


class TestMatrix:
    def test_full_matrix_agrees_across_channels(self):
        from repro.statics import certify_matrix

        matrix = certify_matrix(parse_module(SBOX_LOOKUP), entry="f")
        verdicts = matrix.verdicts()
        # The s-box lookup is residual on time and cache (the secret index
        # spans many lines) but clean on power (no branch, no ctsel).
        assert verdicts["time"]["f"] == "RESIDUAL_LEAK"
        assert verdicts["cache"]["f"] == "RESIDUAL_CACHE_LEAK"
        assert verdicts["power"]["f"] == "CERTIFIED_POWER_BALANCED"
        assert not matrix.all_certified

    def test_matrix_round_trips_through_dict(self):
        import json

        from repro.statics import CertificationMatrix, certify_matrix

        for text in (LEAKY_BRANCH, SBOX_LOOKUP, CLEAN, GUARDED):
            matrix = certify_matrix(parse_module(text))
            record = json.loads(json.dumps(matrix.as_dict()))
            clone = CertificationMatrix.from_dict(record)
            assert clone.as_dict() == matrix.as_dict()
            assert clone.verdicts() == matrix.verdicts()

    def test_matrix_diagnostics_merge_channels(self):
        from repro.statics import certify_matrix

        matrix = certify_matrix(parse_module(LEAKY_BRANCH))
        rules = {d.rule for d in matrix.diagnostics()}
        assert "CT-BRANCH-SECRET" in rules          # time
        assert "CACHE-BRANCH-SECRET" in rules       # cache
        assert {d.rule for d in matrix.diagnostics(channels=("time",))} == {
            "CT-BRANCH-SECRET"
        }
