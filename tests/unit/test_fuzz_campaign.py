"""The coverage-guided campaign: coverage keys, mutation, determinism,
checkpoint/resume byte-identity."""

import json

import pytest

from repro.fuzz.campaign import (
    CampaignAborted,
    CampaignOptions,
    run_campaign,
)
from repro.fuzz.coverage import (
    CoverageMap,
    counter_keys,
    sample_keys,
    value_bucket,
)
from repro.fuzz.generators import FuzzConfig, generate_program
from repro.fuzz.mutate import _sanitize_spec, mutate_ir, mutate_spec
from repro.fuzz.oracles import compile_sample
from repro.fuzz.spec import render_program


def _dump(report) -> str:
    return json.dumps(report.as_dict(), sort_keys=True)


# -- coverage keys -----------------------------------------------------------


def test_value_bucket_is_bit_length():
    assert value_bucket(0) == 0
    assert value_bucket(1) == 1
    assert value_bucket(2) == 2
    assert value_bucket(3) == 2
    assert value_bucket(1000) == 10


def test_counter_keys_whitelist_and_buckets():
    keys = counter_keys({
        "statics.certifier.rule.CT001": 2.0,       # exact family
        "core.repair.ctsels_inserted": 5.0,        # bucketed family
        "core.repair.seconds": 0.123,              # excluded: timer
        "exec.dispatch.compiled": 9.0,             # not whitelisted
        "opt.pass.dce.fired": 1.0,                 # bucketed family
    })
    assert "ctr:statics.certifier.rule.CT001" in keys
    assert "ctr:core.repair.ctsels_inserted:b3" in keys
    assert "ctr:opt.pass.dce.fired:b1" in keys
    assert not any("seconds" in key for key in keys)
    assert not any("exec.dispatch" in key for key in keys)


def test_sample_keys_include_branch_edges():
    spec = generate_program(7, FuzzConfig())
    module = compile_sample(render_program(spec), name="cov")
    from repro.fuzz.generators import generate_inputs

    keys = sample_keys(module, spec.entry, generate_inputs(spec, 7), {})
    assert any(key.startswith("edge:") for key in keys)


def test_coverage_map_observe_and_round_trip():
    cover = CoverageMap()
    assert cover.observe({"a", "b"}, 0) == ["a", "b"]
    assert cover.observe({"b", "c"}, 3) == ["c"]
    assert len(cover) == 3 and "a" in cover
    clone = CoverageMap.from_dict(cover.as_dict())
    assert clone.as_dict() == cover.as_dict()


# -- mutation ----------------------------------------------------------------


def test_mutate_spec_is_pure_and_valid():
    config = FuzzConfig()
    parent = generate_program(3, config)
    donor = generate_program(4, config)
    for seed in range(6):
        first = mutate_spec(parent, seed, config, donor=donor)
        second = mutate_spec(parent, seed, config, donor=donor)
        assert first == second
        compile_sample(render_program(first), name="mutant")  # must not raise


def test_mutate_ir_is_pure_and_valid():
    from repro.fuzz.generators import random_ir_module
    from repro.ir import module_to_str
    from repro.ir.validate import diagnose_module

    parent = random_ir_module(5)
    for seed in range(6):
        first = mutate_ir(parent, seed)
        second = mutate_ir(parent, seed)
        assert module_to_str(first) == module_to_str(second)
        assert module_to_str(first) != module_to_str(parent)
        assert not [d for d in diagnose_module(first)
                    if d.severity == "error"]


def test_sanitizer_clamps_oversized_masks():
    import dataclasses

    from repro.fuzz.spec import ConstE, LoadE, ReturnS, VarE

    spec = generate_program(2, FuzzConfig())
    entry = spec.entry_func
    arrays = [p for p in entry.params if p.pointer]
    assert arrays, "generated entry should take a pointer parameter"
    target = arrays[0]
    # Simulate a splice artifact: an access masked for a bigger array.
    rogue = ReturnS(LoadE(target.name, ConstE(1), mask=1024))
    body = entry.body[:-1] + (rogue,)
    spec = dataclasses.replace(
        spec,
        functions=spec.functions[:-1]
        + (dataclasses.replace(entry, body=body),),
    )
    fixed = _sanitize_spec(spec)
    assert fixed is not None
    last = fixed.entry_func.body[-1]
    assert last.value.mask == target.size - 1


# -- campaigns ---------------------------------------------------------------


def test_campaign_byte_identical_across_jobs_and_shards():
    base = CampaignOptions(seed=0, iterations=10, mutate=True,
                           minimize=False, round_size=4)
    serial = run_campaign(base)
    fanned = run_campaign(base, jobs=2, shards=2)
    assert _dump(serial) == _dump(fanned)
    assert serial.coverage_keys > 0
    assert serial.rounds and serial.rounds[0]["new_keys"] > 0


def test_campaign_resume_matches_uninterrupted(tmp_path):
    base = CampaignOptions(seed=1, iterations=10, mutate=True,
                           minimize=False, round_size=4, shards=2,
                           checkpoint_dir=str(tmp_path / "ckpt"))
    uninterrupted = run_campaign(
        CampaignOptions(seed=1, iterations=10, mutate=True,
                        minimize=False, round_size=4, shards=2)
    )
    with pytest.raises(CampaignAborted):
        run_campaign(base, abort_after_slices=2)
    resumed = run_campaign(base, resume=True)
    assert _dump(resumed) == _dump(uninterrupted)


def test_fuzz_dashboard_renders_deterministically():
    from pathlib import Path

    from repro.obs.report import (
        FUZZ_DASHBOARD_BEGIN,
        FUZZ_DASHBOARD_END,
        load_bench_records,
        render_fuzz_dashboard,
        splice_fuzz_dashboard,
    )

    repo = Path(__file__).resolve().parents[2]
    records = load_bench_records(str(repo))
    corpus = str(repo / "tests" / "corpus")
    first = render_fuzz_dashboard(records, corpus_dir=corpus)
    assert first == render_fuzz_dashboard(records, corpus_dir=corpus)
    assert "Campaign comparison" in first
    assert "fixed (replayed in CI)" in first

    doc = (f"head\n\n{FUZZ_DASHBOARD_BEGIN}\nOLD-SENTINEL\n"
           f"{FUZZ_DASHBOARD_END}\ntail\n")
    spliced = splice_fuzz_dashboard(doc, first)
    assert spliced.startswith("head\n\n" + FUZZ_DASHBOARD_BEGIN)
    assert spliced.endswith(FUZZ_DASHBOARD_END + "\ntail\n")
    assert "OLD-SENTINEL" not in spliced
    assert splice_fuzz_dashboard("no markers here", first) is None

    committed = (repo / "docs" / "FUZZING.md").read_text()
    # The committed dashboard must be exactly what the renderer produces
    # from the committed BENCH_fuzz.json (what `lif report --check` gates).
    assert splice_fuzz_dashboard(committed, first) == committed


def test_campaign_resume_rejects_different_identity(tmp_path):
    ckpt = str(tmp_path / "ckpt")
    run_campaign(CampaignOptions(seed=2, iterations=4, mutate=True,
                                 minimize=False, round_size=4,
                                 checkpoint_dir=ckpt))
    with pytest.raises(ValueError, match="different campaign"):
        run_campaign(
            CampaignOptions(seed=3, iterations=4, mutate=True,
                            minimize=False, round_size=4,
                            checkpoint_dir=ckpt),
            resume=True,
        )
