"""Tests for the process-pool fan-out (satellite: cross-process determinism)."""

import os
from concurrent.futures import ProcessPoolExecutor
from unittest import mock

from repro.artifacts import ArtifactStore, build_many, resolve_jobs
from repro.artifacts.parallel import _worker
from repro.bench.runner import build_request, build_suite, clear_artifact_memo
from repro.bench.suite import get_benchmark

_NAMES = ["otdt", "ofdf", "tea"]


def _deterministic_stats(stats):
    """Stats minus wall-clock noise (``seconds`` is a timing, not content)."""
    if stats is None:
        return None
    return {key: value for key, value in stats.items() if key != "seconds"}


def _requests(names=_NAMES):
    return [build_request(get_benchmark(name)) for name in names]


class TestResolveJobs:
    def test_explicit_argument_wins(self):
        with mock.patch.dict(os.environ, {"REPRO_JOBS": "7"}):
            assert resolve_jobs(3) == 3

    def test_env_fallback(self):
        with mock.patch.dict(os.environ, {"REPRO_JOBS": "7"}):
            assert resolve_jobs() == 7

    def test_cpu_count_default(self):
        with mock.patch.dict(os.environ, clear=False) as env:
            env.pop("REPRO_JOBS", None)
            assert resolve_jobs() == max(1, os.cpu_count() or 1)

    def test_floor_of_one(self):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-4) == 1


class TestBuildMany:
    def test_results_in_request_order(self, tmp_path):
        store = ArtifactStore(tmp_path)
        results = build_many(_requests(), jobs=2, store=store)
        assert [built.name for built in results] == _NAMES

    def test_parallel_matches_serial_byte_for_byte(self):
        serial = build_many(_requests(), jobs=1, store=None)
        parallel = build_many(_requests(), jobs=2, store=None)
        for a, b in zip(serial, parallel):
            assert a.ir == b.ir
            assert _deterministic_stats(a.repair_stats) == _deterministic_stats(
                b.repair_stats
            )
            assert a.sce_correct == b.sce_correct

    def test_workers_populate_the_shared_store(self, tmp_path):
        store = ArtifactStore(tmp_path)
        cold = build_many(_requests(), jobs=2, store=store)
        assert all(not built.cache_hit for built in cold)
        warm = build_many(_requests(), jobs=2, store=store)
        assert all(built.cache_hit for built in warm)
        assert [w.ir for w in warm] == [c.ir for c in cold]


class TestCrossProcessDeterminism:
    def test_two_worker_processes_build_identical_artifacts(self):
        """Satellite: byte-identical IR + identical stats across processes."""
        request = _requests(["otdt"])[0]
        results = []
        for _ in range(2):
            # A fresh single-worker pool per build: each build runs in its
            # own OS process with its own hash seed and iteration state.
            with ProcessPoolExecutor(max_workers=1) as pool:
                built, _snapshot = pool.submit(_worker, request, None).result()
                results.append(built)
        first, second = results
        assert first.ir == second.ir
        assert first.module_names == second.module_names
        assert _deterministic_stats(first.repair_stats) == _deterministic_stats(
            second.repair_stats
        )
        assert _deterministic_stats(first.sce_stats) == _deterministic_stats(
            second.sce_stats
        )
        assert first.sce_correct == second.sce_correct
        assert first.key == second.key

    def test_check_inputs_stable_across_processes(self):
        """make_inputs must not depend on the per-process str hash salt."""
        bench = get_benchmark("loki91")
        with ProcessPoolExecutor(max_workers=1) as pool:
            remote = pool.submit(bench.make_inputs, 4).result()
        assert remote == bench.make_inputs(4)


class TestBuildSuiteWrapper:
    def test_build_suite_returns_wrapped_artifacts(self, tmp_path):
        store = ArtifactStore(tmp_path)
        artifacts = build_suite(_NAMES, jobs=2, store=store)
        assert [entry.bench.name for entry in artifacts] == _NAMES
        assert artifacts[0].repaired.instruction_count() > 0
        assert artifacts[1].sce_outcome == "incorrect"

    def test_build_suite_seeds_the_memo(self, tmp_path):
        from repro.bench.runner import _MEMO, get_artifacts

        clear_artifact_memo()
        try:
            store = ArtifactStore(tmp_path)
            artifacts = build_suite(["otdt"], jobs=1, store=store)
            assert get_artifacts("otdt") is artifacts[0]
        finally:
            clear_artifact_memo()
