"""The top-level convenience API (`repro/api.py`) and package surface."""

import repro
from repro import (
    check_isochronous,
    compile_minic,
    optimize_module,
    repair_module,
    run_function,
)

SOURCE = """
uint ofdt(secret uint *a, secret uint *b) {
  uint r = 1;
  for (uint i = 0; i < 2; i = i + 1) {
    if (a[i] != b[i]) { r = 0; }
  }
  return r;
}
"""


class TestApi:
    def test_version_exposed(self):
        assert repro.__version__

    def test_compile_run_roundtrip(self):
        module = compile_minic(SOURCE)
        assert run_function(module, "ofdt", [[1, 2], [1, 2]]) == 1
        assert run_function(module, "ofdt", [[1, 2], [1, 3]]) == 0

    def test_run_with_trace(self):
        module = compile_minic(SOURCE)
        result = run_function(module, "ofdt", [[1, 2], [1, 2]], trace=True)
        assert result.value == 1
        assert result.trace is not None
        assert result.cycles > 0

    def test_repair_with_manual_sizes(self):
        module = compile_minic(SOURCE)
        repaired = repair_module(module, sizes={"ofdt": {"a": 2, "b": 2}})
        assert run_function(repaired, "ofdt", [[1, 2], 2, [1, 2], 2]) == 1

    def test_optimize_levels(self):
        module = compile_minic(SOURCE)
        assert (optimize_module(module, level=0).instruction_count()
                == module.instruction_count())
        assert (optimize_module(module).instruction_count()
                <= module.instruction_count())

    def test_check_isochronous_end_to_end(self):
        module = compile_minic(SOURCE)
        leaky = check_isochronous(
            module, "ofdt", [[[1, 2], [1, 2]], [[1, 2], [9, 9]]]
        )
        assert not leaky.operation_invariant

        repaired = repair_module(module)
        clean = check_isochronous(
            repaired, "ofdt",
            [[[1, 2], 2, [1, 2], 2], [[1, 2], 2, [9, 9], 2]],
        )
        assert clean.isochronous

    def test_compile_without_unrolling(self):
        module = compile_minic(
            "uint f(uint x) { return x + 1; }", unroll=False
        )
        assert run_function(module, "f", [41]) == 42
