"""Taint/sensitivity analysis (the FlowTracker-style detector)."""

from repro.analysis import analyze_sensitivity
from repro.ir import parse_module


def analyze(text: str, name: str = "f", secrets=None):
    return analyze_sensitivity(parse_module(text), name, secrets)


class TestExplicitFlows:
    def test_all_params_sensitive_by_default(self):
        report = analyze("""
        func @f(k: int) {
        entry:
          x = mov k + 1
          ret x
        }
        """)
        assert "k" in report.tainted_vars
        assert "x" in report.tainted_vars

    def test_selected_params_only(self):
        report = analyze("""
        func @f(k: int, pub: int) {
        entry:
          x = mov pub + 1
          y = mov k + 1
          ret y
        }
        """, secrets=["k"])
        assert "x" not in report.tainted_vars
        assert "y" in report.tainted_vars

    def test_constants_are_untainted(self):
        report = analyze("""
        func @f(k: int) {
        entry:
          x = mov 41
          y = mov x + 1
          ret y
        }
        """)
        assert "y" not in report.tainted_vars

    def test_load_from_secret_array_is_tainted(self):
        report = analyze("""
        func @f(a: ptr) {
        entry:
          x = load a[0]
          ret x
        }
        """)
        assert "x" in report.tainted_vars

    def test_load_from_public_table_with_public_index(self):
        report = analyze("""
        const global @tab[4] = [1, 2, 3, 4]
        func @f(k: int, i: int) {
        entry:
          x = load tab[i]
          ret x
        }
        """, secrets=["k"])
        assert "x" not in report.tainted_vars

    def test_store_taints_array_contents(self):
        report = analyze("""
        func @f(k: int) {
        entry:
          buf = alloc 2
          store k, buf[0]
          x = load buf[1]
          ret x
        }
        """)
        assert "buf" in report.tainted_arrays
        assert "x" in report.tainted_vars


class TestImplicitFlows:
    def test_assignment_under_secret_branch_is_tainted(self):
        report = analyze("""
        func @f(k: int) {
        entry:
          p = mov k == 0
          br p, then, done
        then:
          leak = mov 1
          jmp done
        done:
          r = phi [leak, then], [0, entry]
          ret r
        }
        """)
        assert "leak" in report.tainted_vars

    def test_nested_implicit_flow_is_transitive(self):
        report = analyze("""
        func @f(k: int, pub: int) {
        entry:
          p = mov k == 0
          br p, outer, done
        outer:
          q = mov pub == 0
          br q, inner, merge
        inner:
          deep = mov 1
          jmp merge
        merge:
          jmp done
        done:
          ret 0
        }
        """, secrets=["k"])
        # `deep` runs only when k == 0: tainted through the outer branch even
        # though its direct controller (q) is public.
        assert "deep" in report.tainted_vars


class TestLeakReporting:
    def test_secret_branch_is_operation_leak(self):
        report = analyze("""
        func @f(k: int) {
        entry:
          p = mov k < 0
          br p, a, b
        a:
          jmp b
        b:
          ret 0
        }
        """)
        assert report.operation_variant
        assert report.leaky_branches[0].predicate == "p"
        assert not report.isochronous

    def test_secret_index_is_data_leak(self):
        report = analyze("""
        const global @sbox[256]
        func @f(k: int) {
        entry:
          i = mov k & 255
          x = load sbox[i]
          ret x
        }
        """)
        assert report.data_variant
        leak = report.leaky_indices[0]
        assert (leak.array, leak.index) == ("sbox", "i")

    def test_branch_free_public_indexing_is_clean(self):
        report = analyze("""
        func @f(a: ptr, b: ptr) {
        entry:
          x = load a[0]
          y = load b[0]
          r = mov x ^ y
          ret r
        }
        """)
        assert report.isochronous

    def test_call_taints_pointer_arguments(self):
        report = analyze("""
        func @g(p: ptr, v: int) {
        entry:
          store v, p[0]
          ret 0
        }
        func @f(k: int) {
        entry:
          buf = alloc 1
          c = call @g(buf, k)
          x = load buf[0]
          ret x
        }
        """)
        assert "buf" in report.tainted_arrays
        assert "x" in report.tainted_vars


class TestFig1Classification:
    """The paper's Fig. 1 quartet, classified automatically."""

    def test_ofdf_is_operation_and_data_variant(self, fig1_module):
        report = analyze_sensitivity(fig1_module, "ofdf")
        assert report.operation_variant

    def test_ofdt_is_operation_variant_only(self, fig1_module):
        report = analyze_sensitivity(fig1_module, "ofdt")
        assert report.operation_variant
        assert not report.data_variant

    def test_otdf_is_data_variant_only(self, fig1_module):
        report = analyze_sensitivity(fig1_module, "otdf", ["t"])
        assert not report.operation_variant
        assert report.data_variant

    def test_otdt_is_isochronous(self, fig1_module):
        report = analyze_sensitivity(fig1_module, "otdt")
        assert report.isochronous


class TestImplicitFlowRegressions:
    """Implicit flows that used to slip through (multi-exit CFGs, void calls)."""

    def test_store_under_secret_branch_in_multi_exit_function(self):
        # Two `ret` blocks: control dependence needs the virtual-exit
        # postdominator tree, or the store's implicit taint is dropped.
        report = analyze("""
        func @f(k: int, out: ptr) {
        entry:
          p = mov k == 0
          br p, early, late
        early:
          store 1, out[0]
          ret 0
        late:
          store 2, out[0]
          ret 1
        }
        """)
        assert "out" in report.tainted_arrays
        assert report.operation_variant

    def test_early_return_value_is_implicitly_tainted(self):
        report = analyze("""
        func @f(k: int) {
        entry:
          p = mov k == 0
          br p, early, late
        early:
          x = mov 7
          ret x
        late:
          ret 0
        }
        """)
        assert "x" in report.tainted_vars

    def test_void_call_taints_pointer_argument(self):
        # The call has no destination: the handler must still run so the
        # callee's writes taint the caller's buffer.
        report = analyze("""
        func @g(p: ptr, v: int) {
        entry:
          store v, p[0]
          ret 0
        }
        func @f(k: int) {
        entry:
          buf = alloc 1
          call @g(buf, k)
          x = load buf[0]
          ret x
        }
        """)
        assert "buf" in report.tainted_arrays
        assert "x" in report.tainted_vars
