"""Static power-balance certification (transition-cost model)."""

import pytest

from repro.ir import parse_module
from repro.statics import (
    POWER_VERDICT_CERTIFIED,
    POWER_VERDICT_RESIDUAL,
    PowerCertificationReport,
    analyze_module_taint,
    analyze_power,
)

IMBALANCED_BRANCH = """
func @f(k: int, x: int) {
entry:
  p = mov k < 0
  br p, heavy, light
heavy:
  a = mov x * 3
  b = mov a + 1
  c = mov b * 7
  jmp join
light:
  d = mov x + 1
  jmp join
join:
  r = phi [c, heavy], [d, light]
  ret r
}
"""

BALANCED_BRANCH = """
func @f(k: int, x: int) {
entry:
  p = mov k < 0
  br p, a, b
a:
  u = mov x + 1
  jmp join
b:
  v = mov x - 1
  jmp join
join:
  r = phi [u, a], [v, b]
  ret r
}
"""

CTSEL_IMBALANCE = """
func @f(k: int) {
entry:
  p = mov k < 0
  r = ctsel p, 255, 0
  ret r
}
"""

CTSEL_BALANCED = """
func @f(k: int) {
entry:
  p = mov k < 0
  r = ctsel p, 5, 6
  ret r
}
"""

GUARD_CTSEL = """
func @f(k: int) {
entry:
  p = mov k < 0
  r = ctsel p, 255, 0, guard
  ret r
}
"""

STRAIGHT_LINE = """
func @f(k: int) {
entry:
  a = mov k * 3
  b = mov a ^ 255
  ret b
}
"""


def _power_report(source, sensitive=("k",)):
    module = parse_module(source)
    taint = analyze_module_taint(module, {"f": list(sensitive)}, False)
    return analyze_power(module, taint)


class TestBranchBalance:
    def test_imbalanced_secret_branch_is_genuine_failure(self):
        report = _power_report(IMBALANCED_BRANCH)
        cert = report.functions["f"]
        assert cert.verdict == POWER_VERDICT_RESIDUAL
        assert cert.imbalanced_branches == 1
        assert not cert.transition_only
        assert report.genuine_failures == ["f"]
        rules = [d.rule for d in cert.diagnostics]
        assert "POWER-IMBALANCED-BRANCH" in rules

    def test_balanced_secret_branch_certifies_with_note(self):
        # Sibling paths cost the same, so the power profile is balanced
        # even though the branch still leaks on the time channel.
        report = _power_report(BALANCED_BRANCH)
        cert = report.functions["f"]
        assert cert.verdict == POWER_VERDICT_CERTIFIED
        assert cert.balanced_branches == 1
        rules = [d.rule for d in cert.diagnostics]
        assert "POWER-BALANCED-BRANCH" in rules
        assert "POWER-IMBALANCED-BRANCH" not in rules


class TestCtselBalance:
    def test_unequal_hamming_weights_are_transition_only(self):
        # 255 has weight 8, 0 has weight 0: secret-dependent operand
        # transitions, but no cost-imbalanced branch — transition_only.
        report = _power_report(CTSEL_IMBALANCE)
        cert = report.functions["f"]
        assert cert.verdict == POWER_VERDICT_RESIDUAL
        assert cert.ctsel_imbalances == 1
        assert cert.transition_only
        assert report.genuine_failures == []
        assert report.residual_functions == ["f"]
        rules = [d.rule for d in cert.diagnostics]
        assert "POWER-CTSEL-IMBALANCE" in rules

    def test_equal_hamming_weights_certify(self):
        # 5 (101) and 6 (110) both have weight 2.
        report = _power_report(CTSEL_BALANCED)
        assert report.functions["f"].verdict == POWER_VERDICT_CERTIFIED
        assert report.functions["f"].ctsel_imbalances == 0

    def test_repair_guard_selects_are_exempt(self):
        # Covenant 1: a guard condition holds on every real execution,
        # so the select never makes a secret-dependent transition.
        report = _power_report(GUARD_CTSEL)
        assert report.functions["f"].verdict == POWER_VERDICT_CERTIFIED


class TestReport:
    def test_straight_line_code_certifies(self):
        report = _power_report(STRAIGHT_LINE)
        cert = report.functions["f"]
        assert cert.verdict == POWER_VERDICT_CERTIFIED
        assert cert.diagnostics == ()
        assert report.all_certified

    def test_round_trips_through_dict(self):
        report = _power_report(IMBALANCED_BRANCH)
        clone = PowerCertificationReport.from_dict(report.as_dict())
        assert clone.as_dict() == report.as_dict()
        assert clone.genuine_failures == ["f"]

    def test_missing_function_raises(self):
        module = parse_module(STRAIGHT_LINE)
        taint = analyze_module_taint(module, {"f": ["k"]}, False)
        with pytest.raises(KeyError):
            analyze_power(module, taint, ["nope"])
