"""The client must survive a connection reset mid-response.

A submission can be *accepted* by the server and still fail on the wire
— the response never arrives because the connection died (the ``drop``
fault in :mod:`repro.serve.faults` injects exactly this).  Because jobs
are content-addressed, re-posting the same spec is idempotent, so
:meth:`ServeClient.submit_retrying` treats transport death as retryable.

These tests reproduce the reset against a real socket (SO_LINGER=0
forces an RST on close) without needing the full server.
"""

import json
import socket
import struct
import threading

import pytest

from repro.serve.client import TRANSIENT_ERRORS, ServeClient, ServeError
from repro.serve.protocol import JobSpec

SPEC = JobSpec(kind="repair", source="int f() { return 1; }", name="f")


class FlakyServer:
    """Accepts connections; resets the first N, then answers properly."""

    def __init__(self, resets: int, response: dict, status: int = 202):
        self.resets = resets
        self.response = response
        self.status = status
        self.connections = 0
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.host, self.port = self._sock.getsockname()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while True:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            self.connections += 1
            try:
                conn.settimeout(10)
                self._read_request(conn)
                if self.connections <= self.resets:
                    # SO_LINGER with zero timeout: close() sends RST,
                    # the reset-mid-response the drop fault injects.
                    conn.setsockopt(
                        socket.SOL_SOCKET, socket.SO_LINGER,
                        struct.pack("ii", 1, 0),
                    )
                    conn.close()
                    continue
                body = (json.dumps(self.response) + "\n").encode()
                conn.sendall(
                    (
                        f"HTTP/1.1 {self.status} OK\r\n"
                        "Content-Type: application/json\r\n"
                        f"Content-Length: {len(body)}\r\n"
                        "Connection: close\r\n\r\n"
                    ).encode() + body
                )
                conn.close()
            except OSError:
                pass

    @staticmethod
    def _read_request(conn):
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = conn.recv(4096)
            if not chunk:
                return data
            data += chunk
        head, _, rest = data.partition(b"\r\n\r\n")
        length = 0
        for line in head.decode("latin-1").split("\r\n"):
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        while len(rest) < length:
            chunk = conn.recv(4096)
            if not chunk:
                break
            rest += chunk
        return data

    def close(self):
        self._sock.close()


@pytest.fixture()
def accepted():
    return {"job_id": "j00000001", "key": "k", "status": "queued",
            "cached": False}


def test_plain_submit_surfaces_the_reset(accepted):
    server = FlakyServer(resets=1, response=accepted)
    try:
        client = ServeClient(server.host, server.port, timeout=10)
        with pytest.raises(TRANSIENT_ERRORS):
            client.submit(SPEC)
    finally:
        server.close()


def test_submit_retrying_rides_out_one_reset(accepted):
    server = FlakyServer(resets=1, response=accepted)
    try:
        client = ServeClient(server.host, server.port, timeout=10)
        result = client.submit_retrying(SPEC, attempts=5)
        assert result["job_id"] == "j00000001"
        assert server.connections == 2
    finally:
        server.close()


def test_submit_retrying_rides_out_consecutive_resets(accepted):
    server = FlakyServer(resets=3, response=accepted)
    try:
        client = ServeClient(server.host, server.port, timeout=10)
        result = client.submit_retrying(SPEC, attempts=10)
        assert result["job_id"] == "j00000001"
        assert server.connections == 4
    finally:
        server.close()


def test_submit_retrying_gives_up_after_attempts(accepted):
    server = FlakyServer(resets=10 ** 6, response=accepted)
    try:
        client = ServeClient(server.host, server.port, timeout=10)
        with pytest.raises(TRANSIENT_ERRORS):
            client.submit_retrying(SPEC, attempts=3)
        assert server.connections == 3
    finally:
        server.close()


def test_http_errors_are_not_retried_as_transport_faults(accepted):
    server = FlakyServer(resets=0, response={"error": "bad_request"},
                         status=400)
    try:
        client = ServeClient(server.host, server.port, timeout=10)
        with pytest.raises(ServeError) as excinfo:
            client.submit_retrying(SPEC, attempts=5)
        assert excinfo.value.status == 400
        assert server.connections == 1
    finally:
        server.close()


def test_wait_rides_out_a_reset(accepted):
    done = {"job_id": "j00000001", "key": "k", "status": "done"}
    server = FlakyServer(resets=1, response=done, status=200)
    try:
        client = ServeClient(server.host, server.port, timeout=10)
        view = client.wait("j00000001", timeout=30)
        assert view["status"] == "done"
        assert server.connections == 2
    finally:
        server.close()
