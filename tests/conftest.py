"""Shared fixtures: canonical example programs from the paper."""

from __future__ import annotations

import pytest

from repro.frontend import compile_source
from repro.ir import parse_module

#: The unrolled oFdF of the paper's Fig. 5, written directly in the IR.
OFDF_IR = """
func @ofdf(a: ptr, b: ptr) {
l0:
  x0 = load a[0]
  y0 = load b[0]
  p0 = mov x0 != y0
  br p0, l4, l1
l1:
  x1 = load a[1]
  y1 = load b[1]
  p1 = mov x1 != y1
  br p1, l4, l3
l3:
  jmp l5
l4:
  jmp l5
l5:
  r = phi [1, l3], [0, l4]
  ret r
}
"""

#: MiniC version of the paper's Fig. 1 quartet.
FIG1_MINIC = """
uint ofdf(secret uint *a, secret uint *b) {
  for (uint i = 0; i < 2; i = i + 1) {
    if (a[i] != b[i]) { return 0; }
  }
  return 1;
}
uint ofdt(secret uint *a, secret uint *b) {
  uint r = 1;
  for (uint i = 0; i < 2; i = i + 1) {
    if (a[i] != b[i]) { r = 0; }
  }
  return r;
}
uint otdf(uint *a, uint *b, secret uint *t) {
  uint r = 1;
  for (uint i = 0; i < 2; i = i + 1) {
    r = (a[t[i]] == b[t[i]]) ? r : 0;
  }
  return r;
}
uint otdt(secret uint *a, secret uint *b) {
  uint r = 1;
  for (uint i = 0; i < 2; i = i + 1) {
    r = (a[i] == b[i]) ? r : 0;
  }
  return r;
}
"""


@pytest.fixture
def ofdf_module():
    return parse_module(OFDF_IR)


@pytest.fixture
def fig1_module():
    return compile_source(FIG1_MINIC, name="fig1")
